package switchsim

import (
	"fmt"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
)

// CheckInvariants audits the MMU's internal consistency and returns the
// first violation found, or nil. It is O(ports × priorities) and intended
// for tests and debugging runs, where it is called between events; the
// conditions it checks must hold at every event boundary:
//
//  1. no counter is negative;
//  2. sharedUsed equals the summed over-reserve ingress usage;
//  3. each egress class pool equals the sum of its queues' counters;
//  4. resident equals total ingress + headroom bytes, and also total
//     egress bytes (every resident packet is counted once on each side);
//  5. the per-priority congested-queue census matches the counters;
//  6. a paused ingress queue is lossless (only lossless queues send PFC);
//  7. no headroom counter exceeds the configured per-queue headroom pool
//     (admission enforces the cap; a counter past it means some path
//     charged headroom without the check).
func (s *Switch) CheckInvariants() error {
	var ingSum, hrSum, egSum, sharedSum int64
	var poolSum [4]int64
	var congested [pkt.NumPriorities]int

	for port := range s.ports {
		pm := &s.mmu.ports[port]
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			ing := pm.ing[prio]
			eg := pm.eg[prio]
			hr := pm.hr[prio]
			if ing < 0 || eg < 0 || hr < 0 {
				return fmt.Errorf("switch %s: negative counter at (%d,%d): ing=%d eg=%d hr=%d",
					s.name, port, prio, ing, eg, hr)
			}
			if hr > s.cfg.HeadroomPerQueue {
				return fmt.Errorf("switch %s: headroom (%d,%d)=%d exceeds per-queue pool %d",
					s.name, port, prio, hr, s.cfg.HeadroomPerQueue)
			}
			ingSum += ing
			hrSum += hr
			egSum += eg
			sharedSum += sharedPart(ing, s.cfg.ReservedPerQueue)
			poolSum[int(core.ClassOfPriority(prio))] += eg
			if eg > s.cfg.CongestionMark {
				congested[prio]++
			}
			if pm.pausedOn(prio) && core.ClassOfPriority(prio) != pkt.ClassLossless {
				return fmt.Errorf("switch %s: non-lossless queue (%d,%d) is PFC-paused",
					s.name, port, prio)
			}
		}
	}

	if sharedSum != s.mmu.sharedUsed {
		return fmt.Errorf("switch %s: sharedUsed=%d, recomputed %d", s.name, s.mmu.sharedUsed, sharedSum)
	}
	if got := ingSum + hrSum; got != s.mmu.resident {
		return fmt.Errorf("switch %s: resident=%d, ingress+headroom=%d", s.name, s.mmu.resident, got)
	}
	if egSum != s.mmu.resident {
		return fmt.Errorf("switch %s: resident=%d, egress sum=%d", s.name, s.mmu.resident, egSum)
	}
	for c := 1; c <= 3; c++ {
		if poolSum[c] != s.mmu.poolUsed[c] {
			return fmt.Errorf("switch %s: pool[%v]=%d, recomputed %d",
				s.name, pkt.Class(c), s.mmu.poolUsed[c], poolSum[c])
		}
	}
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		if congested[prio] != s.mmu.congested[prio] {
			return fmt.Errorf("switch %s: congested[%d]=%d, recomputed %d",
				s.name, prio, s.mmu.congested[prio], congested[prio])
		}
	}
	return nil
}

// SkewSharedUsedForTest corrupts the MMU's shared-pool counter by delta
// bytes WITHOUT touching the per-queue counters it is derived from — the
// seeded accounting bug the chaos harness's mutation test plants to prove
// the invariant auditor catches (and the shrinker minimizes) real
// conservation violations. Production code must never call this.
func (s *Switch) SkewSharedUsedForTest(delta int64) { s.mmu.sharedUsed += delta }

// CheckDrained audits that the MMU is fully quiescent — the state every
// switch must reach after all traffic has drained, even across faults
// (carrier loss, corrupted frames, lost pause frames). It subsumes
// CheckInvariants and additionally requires every counter to be exactly
// zero and every PFC pause released:
//
//  1. the internal-consistency invariants hold (CheckInvariants);
//  2. resident, sharedUsed and every class pool are zero;
//  3. every per-queue ingress/egress/headroom counter is zero;
//  4. no ingress queue is still PFC-paused (a leaked pause would wedge the
//     upstream forever);
//  5. the congested census is zero for every priority.
//
// A non-nil error means buffer bytes or control state leaked: some path
// (a drop site, a fault-recovery path, a dequeue) updated one side of the
// accounting but not the other.
func (s *Switch) CheckDrained() error {
	if err := s.CheckInvariants(); err != nil {
		return err
	}
	if s.mmu.resident != 0 {
		return fmt.Errorf("switch %s: resident=%d after drain, want 0", s.name, s.mmu.resident)
	}
	if s.mmu.sharedUsed != 0 {
		return fmt.Errorf("switch %s: sharedUsed=%d after drain, want 0", s.name, s.mmu.sharedUsed)
	}
	for c := 1; c <= 3; c++ {
		if s.mmu.poolUsed[c] != 0 {
			return fmt.Errorf("switch %s: pool[%v]=%d after drain, want 0",
				s.name, pkt.Class(c), s.mmu.poolUsed[c])
		}
	}
	for port := range s.ports {
		pm := &s.mmu.ports[port]
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			if v := pm.ing[prio]; v != 0 {
				return fmt.Errorf("switch %s: ingress (%d,%d)=%d after drain, want 0", s.name, port, prio, v)
			}
			if v := pm.eg[prio]; v != 0 {
				return fmt.Errorf("switch %s: egress (%d,%d)=%d after drain, want 0", s.name, port, prio, v)
			}
			if v := pm.hr[prio]; v != 0 {
				return fmt.Errorf("switch %s: headroom (%d,%d)=%d after drain, want 0", s.name, port, prio, v)
			}
			if pm.pausedOn(prio) {
				return fmt.Errorf("switch %s: ingress (%d,%d) still PFC-paused after drain", s.name, port, prio)
			}
		}
	}
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		if s.mmu.congested[prio] != 0 {
			return fmt.Errorf("switch %s: congested[%d]=%d after drain, want 0", s.name, prio, s.mmu.congested[prio])
		}
	}
	return nil
}
