package switchsim

import (
	"fmt"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
)

// CheckInvariants audits the MMU's internal consistency and returns the
// first violation found, or nil. It is O(ports × priorities) and intended
// for tests and debugging runs, where it is called between events; the
// conditions it checks must hold at every event boundary:
//
//  1. no counter is negative;
//  2. sharedUsed equals the summed over-reserve ingress usage;
//  3. each egress class pool equals the sum of its queues' counters;
//  4. resident equals total ingress + headroom bytes, and also total
//     egress bytes (every resident packet is counted once on each side);
//  5. the per-priority congested-queue census matches the counters;
//  6. a paused ingress queue is lossless (only lossless queues send PFC).
func (s *Switch) CheckInvariants() error {
	var ingSum, hrSum, egSum, sharedSum int64
	var poolSum [4]int64
	var congested [pkt.NumPriorities]int

	for port := range s.ports {
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			ing := s.mmu.ing[port][prio]
			eg := s.mmu.eg[port][prio]
			hr := s.mmu.hr[port][prio]
			if ing < 0 || eg < 0 || hr < 0 {
				return fmt.Errorf("switch %s: negative counter at (%d,%d): ing=%d eg=%d hr=%d",
					s.name, port, prio, ing, eg, hr)
			}
			ingSum += ing
			hrSum += hr
			egSum += eg
			sharedSum += sharedPart(ing, s.cfg.ReservedPerQueue)
			poolSum[int(core.ClassOfPriority(prio))] += eg
			if eg > s.cfg.CongestionMark {
				congested[prio]++
			}
			if s.mmu.paused[port][prio] && core.ClassOfPriority(prio) != pkt.ClassLossless {
				return fmt.Errorf("switch %s: non-lossless queue (%d,%d) is PFC-paused",
					s.name, port, prio)
			}
		}
	}

	if sharedSum != s.mmu.sharedUsed {
		return fmt.Errorf("switch %s: sharedUsed=%d, recomputed %d", s.name, s.mmu.sharedUsed, sharedSum)
	}
	if got := ingSum + hrSum; got != s.mmu.resident {
		return fmt.Errorf("switch %s: resident=%d, ingress+headroom=%d", s.name, s.mmu.resident, got)
	}
	if egSum != s.mmu.resident {
		return fmt.Errorf("switch %s: resident=%d, egress sum=%d", s.name, s.mmu.resident, egSum)
	}
	for c := 1; c <= 3; c++ {
		if poolSum[c] != s.mmu.poolUsed[c] {
			return fmt.Errorf("switch %s: pool[%v]=%d, recomputed %d",
				s.name, pkt.Class(c), s.mmu.poolUsed[c], poolSum[c])
		}
	}
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		if congested[prio] != s.mmu.congested[prio] {
			return fmt.Errorf("switch %s: congested[%d]=%d, recomputed %d",
				s.name, prio, s.mmu.congested[prio], congested[prio])
		}
	}
	return nil
}
