package audit

import (
	"strings"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// buildTiny builds a minimal cluster for in-package sweeps. The
// end-to-end auditor behavior (observer-freedom, catching seeded
// corruption, fault tolerance) is exercised in internal/exp and
// internal/chaos; these tests pin the package's own contract surface.
func buildTiny(t *testing.T) *topo.Cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	cl, err := topo.Build(eng, topo.TinyConfig(), func() core.Policy { return core.NewDT() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestConfigDefaults: the zero Config must be usable — 500 µs period,
// 64-violation retention.
func TestConfigDefaults(t *testing.T) {
	a := New(buildTiny(t), Config{})
	if a.Every() != 500*sim.Microsecond {
		t.Errorf("default period = %v, want 500µs", a.Every())
	}
	if a.cfg.Limit != 64 {
		t.Errorf("default retention limit = %d, want 64", a.cfg.Limit)
	}
}

// TestCleanIdleSweep: an idle, freshly built cluster passes every check,
// including the drain-time finals.
func TestCleanIdleSweep(t *testing.T) {
	a := New(buildTiny(t), Config{MaxPauseAge: sim.Duration(sim.Millisecond)})
	a.CheckOnce(0)
	a.Final()
	if len(a.Violations()) != 0 || a.Total() != 0 {
		t.Fatalf("idle cluster flagged: %v", a.Violations())
	}
	if a.Checks() != 2 { // CheckOnce + Final's sweep
		t.Errorf("checks = %d, want 2", a.Checks())
	}
}

// TestCatchesSkewAndCapsRetention: a seeded shared-pool skew is flagged on
// every sweep, retention stops at Limit while Total keeps counting.
func TestCatchesSkewAndCapsRetention(t *testing.T) {
	cl := buildTiny(t)
	cl.ToRs[0].SkewSharedUsedForTest(1 << 20)
	a := New(cl, Config{Limit: 3})
	for i := 0; i < 10; i++ {
		a.CheckOnce(sim.Time(i))
	}
	if len(a.Violations()) != 3 {
		t.Fatalf("retained %d violations, want the cap of 3: %v", len(a.Violations()), a.Violations())
	}
	if a.Total() < 10 {
		t.Errorf("total = %d, want >= 10 (one per sweep past the cap)", a.Total())
	}
	if v := a.Violations()[0]; !strings.Contains(v, "sharedUsed") || !strings.Contains(v, "audit t=") {
		t.Errorf("violation text missing diagnosis or timestamp: %q", v)
	}
}

// TestStartStop: the engine-driven chain sweeps once per period and stops
// cleanly when asked.
func TestStartStop(t *testing.T) {
	cl := buildTiny(t)
	a := New(cl, Config{Every: 100 * sim.Microsecond})
	a.Start()
	cl.Eng.Run(sim.Time(1050 * sim.Microsecond))
	if a.Checks() != 10 {
		t.Errorf("checks after 1.05ms at 100µs = %d, want 10", a.Checks())
	}
	a.Stop()
	cl.Eng.Run(sim.Time(2 * sim.Millisecond))
	if a.Checks() != 10 {
		t.Errorf("sweeps continued after Stop: %d", a.Checks())
	}
}
