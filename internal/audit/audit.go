// Package audit is the global invariant auditor: a periodic, observer-free
// sweep of conservation laws the whole fabric must obey at every event
// boundary, run while the simulation is in flight rather than only at the
// end. The per-switch MMU consistency checks (switchsim.CheckInvariants)
// catch local accounting bugs; the auditor composes them with the global
// laws no single switch can see:
//
//   - buffer-byte conservation per switch: the per-queue occupancy sums
//     must match the MMU's pool totals (delegated to CheckInvariants),
//     and the shared pool must stay within its configured capacity
//     (plus one in-flight MTU of admission slack);
//   - non-negative occupancy and threshold bounds (CheckInvariants);
//   - PFC pause/resume pairing: every XOFF must eventually be matched by
//     an XON — a transmit pause older than MaxPauseAge is flagged, and
//     after a full drain no pause may remain at all;
//   - flow-byte conservation: data bytes injected by hosts equal bytes
//     delivered plus bytes dropped at any kill site plus bytes in flight
//     (in-flight is never negative mid-run, and exactly zero after a
//     drained run);
//   - pool accounting: no packet pool's outstanding count may go negative,
//     and in debug mode the live-map census must equal the counter-derived
//     Live() exactly.
//
// Observer-freedom is a hard contract: a sweep only reads state — it draws
// from no RNG stream, schedules nothing that runs simulation code, and
// mutates nothing outside the auditor itself — so an auditor-on run
// produces byte-identical results and trace files to an auditor-off run
// (enforced by test in internal/exp). In the classic engine the sweep rides
// an ordinary periodic event (consuming sequence numbers does not reorder
// other events: the (time, seq) tie-break is monotone, and keyed arrivals
// live in a disjoint key space). Under the sharded conductor the sweep runs
// as a barrier task, when all shard clocks agree and every cross-shard
// mailbox is drained — the only instant a global read is coherent.
package audit

import (
	"fmt"

	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// Config tunes the auditor. The zero value is usable: a 500 µs sweep
// period, pause-age checking off, and up to 64 retained violations.
type Config struct {
	// Every is the sweep period (0 = 500 µs).
	Every sim.Duration
	// MaxPauseAge, when positive, flags any transmit-pause interval that
	// has lasted longer than this without a matching resume. Enable it only
	// on scenarios that cannot legitimately wedge a pause (no PFC-frame
	// loss, no carrier cuts): a lost XON is a modeled fault, not a
	// simulator bug, and is checked at drain time instead.
	MaxPauseAge sim.Duration
	// AllowLeakedPause skips the after-drain no-pause-left check — set it
	// when the fault plan destroys PFC frames or cuts carriers, either of
	// which can legitimately strand a pause with no XON to clear it.
	AllowLeakedPause bool
	// Limit caps the retained violation strings (0 = 64); the total count
	// keeps climbing past it.
	Limit int
}

// Auditor sweeps one built cluster. Build with New, then either Start (the
// classic engine's periodic event chain) or wire CheckOnce as a psim
// barrier task; call Final after the run for the drain-time checks.
type Auditor struct {
	cfg Config
	cl  *topo.Cluster
	eng *sim.Engine

	violations []string
	total      uint64
	checks     uint64
	stopped    bool
}

// New builds an auditor over cl, applying Config defaults.
func New(cl *topo.Cluster, cfg Config) *Auditor {
	if cfg.Every <= 0 {
		cfg.Every = 500 * sim.Microsecond
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 64
	}
	return &Auditor{cfg: cfg, cl: cl, eng: cl.Eng}
}

// Every returns the effective sweep period.
func (a *Auditor) Every() sim.Duration { return a.cfg.Every }

// Start arms the periodic sweep on the cluster's engine (classic,
// single-engine runs). Sharded runs must NOT Start: they register CheckOnce
// as a conductor barrier task instead, because an engine event on one shard
// reads other shards' state mid-epoch.
func (a *Auditor) Start() {
	a.stopped = false
	a.eng.Schedule(a.cfg.Every, a.tick)
}

// Stop halts the periodic sweep after the current tick.
func (a *Auditor) Stop() { a.stopped = true }

func (a *Auditor) tick() {
	if a.stopped {
		return
	}
	a.CheckOnce(a.eng.Now())
	a.eng.Schedule(a.cfg.Every, a.tick)
}

// CheckOnce runs one full sweep at the given instant. Pure reads only.
func (a *Auditor) CheckOnce(now sim.Time) {
	a.checks++

	// Per-switch MMU consistency plus the shared-pool capacity bound. The
	// one-MTU slack is admission granularity: a single in-flight admission
	// may carry the pool past B by at most one wire MTU before thresholds
	// (all of the α·(B−Q) family) collapse to zero.
	for _, sw := range a.cl.AllSwitches() {
		if err := sw.CheckInvariants(); err != nil {
			a.record(now, "%v", err)
		}
		if used, total := sw.SharedUsed(), sw.TotalShared(); used > total+pkt.MTUBytes {
			a.record(now, "switch %s: sharedUsed=%d exceeds TotalShared=%d (+1 MTU slack)",
				sw.Name(), used, total)
		}
	}

	// PFC pause/resume pairing, transmitter view: a pause older than
	// MaxPauseAge means an XOFF whose matching XON never came.
	if a.cfg.MaxPauseAge > 0 {
		a.checkPauseAges(now, a.cfg.MaxPauseAge)
	}

	// Flow-byte conservation: in-flight bytes can never be negative.
	if tx, rx, dropped := a.cl.DataBytes(); tx-rx-dropped < 0 {
		a.record(now, "flow-byte ledger negative: injected=%d delivered=%d dropped=%d (in-flight %d)",
			tx, rx, dropped, tx-rx-dropped)
	}

	// Pool accounting. Barrier tasks run with every cross-shard mailbox
	// drained and the classic engine has no mailboxes, so at a sweep
	// instant every live packet is owned by exactly one pool.
	for shard, pl := range a.cl.Pools {
		if pl == nil {
			continue
		}
		live := pl.Live()
		if live < 0 {
			a.record(now, "pool[%d]: Live()=%d < 0 (more returns than checkouts)", shard, live)
		}
		if pl.Debug() {
			if tracked := int64(len(pl.Leaked())); tracked != live {
				a.record(now, "pool[%d]: live map tracks %d packets but counters say %d",
					shard, tracked, live)
			}
		}
	}
}

// checkPauseAges scans every transmit direction in the fabric — switch
// ports and host NICs — for pauses older than maxAge.
func (a *Auditor) checkPauseAges(now sim.Time, maxAge sim.Duration) {
	check := func(p *netdev.Port) {
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			if p.Paused(prio) && now-p.PausedSince(prio) >= sim.Time(maxAge) {
				a.record(now, "%v prio %d paused since %v with no resume (max pause age %v)",
					p, prio, p.PausedSince(prio), maxAge)
			}
		}
	}
	for _, sw := range a.cl.AllSwitches() {
		for i := 0; i < sw.NumPorts(); i++ {
			check(sw.Port(i))
		}
	}
	for _, h := range a.cl.Hosts {
		check(h.NIC())
	}
}

// Final runs the drain-time checks after the run has ended: one last sweep,
// and — when every packet pool reads fully returned, i.e. nothing is in
// flight anywhere — exact conservation: the flow-byte ledger must balance
// to zero, every switch must be quiescent (CheckDrained), and no PFC pause
// may remain asserted (unless the fault plan can legitimately strand one,
// see Config.AllowLeakedPause).
func (a *Auditor) Final() {
	now := a.eng.Now()
	a.CheckOnce(now)

	drained := true
	for _, pl := range a.cl.Pools {
		if pl == nil || pl.Live() != 0 {
			drained = false // pooling off, or frames still parked/in flight
		}
	}
	if !drained {
		return
	}
	if tx, rx, dropped := a.cl.DataBytes(); tx-rx-dropped != 0 {
		a.record(now, "flow-byte ledger unbalanced after drain: injected=%d delivered=%d dropped=%d (in-flight %d, want 0)",
			tx, rx, dropped, tx-rx-dropped)
	}
	for _, sw := range a.cl.AllSwitches() {
		if err := sw.CheckDrained(); err != nil {
			a.record(now, "after drain: %v", err)
		}
	}
	if !a.cfg.AllowLeakedPause {
		a.checkPauseAges(now, 0) // any surviving pause is a leak now
	}
}

// record appends one violation, keeping at most cfg.Limit strings.
func (a *Auditor) record(now sim.Time, format string, args ...any) {
	a.total++
	if len(a.violations) < a.cfg.Limit {
		msg := fmt.Sprintf(format, args...)
		a.violations = append(a.violations, fmt.Sprintf("audit t=%v: %s", now, msg))
	}
}

// Violations returns the retained violation strings (empty on a clean run).
func (a *Auditor) Violations() []string { return a.violations }

// Total returns the total violation count, including those past the
// retention limit.
func (a *Auditor) Total() uint64 { return a.total }

// Checks returns how many sweeps ran (Final's last sweep included).
func (a *Auditor) Checks() uint64 { return a.checks }
