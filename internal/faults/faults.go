// Package faults is the deterministic fault-injection subsystem: it turns a
// declarative Plan (link flaps, frame corruption, lost PFC, switch
// blackouts) into scheduled events and receive-side hooks on netdev ports,
// all driven from named sim.Rand streams so a run is bit-identical given
// (seed, plan). The package also houses the PFC deadlock detector and the
// engine no-progress watchdog — the detection half of the robustness story.
package faults

import (
	"fmt"
	"math"

	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Link is one cable as the injector sees it: the two ports plus a SetLive
// callback that raises or cuts the carrier *and* updates the topology's
// routing liveness (the topo layer provides the closure so faults need not
// know about Clos coordinates).
type Link struct {
	Name         string
	A, B         *netdev.Port
	AName, BName string
	SetLive      func(up bool)
}

// ScheduledEvent flips one named link at a fixed time (deterministic
// schedules, as opposed to the Poisson flap process).
type ScheduledEvent struct {
	Link string
	At   sim.Time
	Up   bool
}

// Blackout takes every link touching one switch down at At and restores
// them Duration later — a whole-device failure.
type Blackout struct {
	Switch   string
	At       sim.Time
	Duration sim.Duration
}

// Plan declares the faults to inject. The zero value injects nothing.
type Plan struct {
	// Stream namespaces the RNG streams ("faults" when empty). Different
	// stream names must not perturb the workload streams — the injector
	// draws only from "<Stream>/..." streams and only when a fault rate is
	// nonzero, preserving common random numbers across scenarios.
	Stream string

	// FlapRate is the mean link-down events per second per eligible link
	// (Poisson process); zero disables flapping.
	FlapRate float64
	// FlapDowntime is the mean outage duration per flap; exponentially
	// distributed unless FlapFixed pins it exactly.
	FlapDowntime sim.Duration
	// FlapFixed selects a fixed (rather than exponential) downtime.
	FlapFixed bool
	// FlapWindow stops scheduling new flaps this long after Install, so
	// in-flight traffic can drain and complete; zero flaps forever.
	FlapWindow sim.Duration
	// LinkFilter restricts which links flap (nil = every link offered).
	// Excluded from JSON: plans travel inside serialized specs (sweep
	// submissions, chaos reproducers) and funcs do not serialize.
	LinkFilter func(name string) bool `json:"-"`

	// Scheduled lists deterministic link up/down events.
	Scheduled []ScheduledEvent

	// BER is the per-bit error probability applied to data frames; a
	// corrupted frame is dropped (the FCS would have rejected it).
	BER float64
	// PFCLossRate is the probability an arriving PFC control frame is
	// lost — the fault that exposes XOFF-wedge bugs.
	PFCLossRate float64

	// Blackouts lists whole-switch outages.
	Blackouts []Blackout
}

// Validate rejects plans whose rates are NaN, negative, or out of range —
// the injector refuses to turn garbage into silent no-ops or storms.
func (p *Plan) Validate() error {
	switch {
	case math.IsNaN(p.FlapRate) || math.IsInf(p.FlapRate, 0) || p.FlapRate < 0:
		return fmt.Errorf("faults: FlapRate = %v, want finite >= 0", p.FlapRate)
	case p.FlapRate > 0 && p.FlapDowntime <= 0:
		return fmt.Errorf("faults: FlapRate %v needs FlapDowntime > 0 (got %v)", p.FlapRate, p.FlapDowntime)
	case p.FlapWindow < 0:
		return fmt.Errorf("faults: FlapWindow = %v, want >= 0", p.FlapWindow)
	case math.IsNaN(p.BER) || p.BER < 0 || p.BER >= 1:
		return fmt.Errorf("faults: BER = %v, want in [0, 1)", p.BER)
	case math.IsNaN(p.PFCLossRate) || p.PFCLossRate < 0 || p.PFCLossRate > 1:
		return fmt.Errorf("faults: PFCLossRate = %v, want in [0, 1]", p.PFCLossRate)
	}
	for _, b := range p.Blackouts {
		if b.Duration <= 0 {
			return fmt.Errorf("faults: blackout of %q has non-positive duration %v", b.Switch, b.Duration)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	return p.FlapRate > 0 || p.BER > 0 || p.PFCLossRate > 0 ||
		len(p.Scheduled) > 0 || len(p.Blackouts) > 0
}

// stream returns the RNG namespace.
func (p *Plan) stream() string {
	if p.Stream == "" {
		return "faults"
	}
	return p.Stream
}

// Stats counts injected faults.
type Stats struct {
	// LinkDownEvents and LinkUpEvents count carrier transitions from every
	// source (flaps, scheduled events, blackouts).
	LinkDownEvents uint64
	LinkUpEvents   uint64
	// CorruptedFrames counts data frames dropped by the BER process.
	CorruptedFrames uint64
	// LostPFC counts PFC control frames swallowed by the loss process.
	LostPFC uint64
	// BlackoutEvents counts whole-switch outages that fired.
	BlackoutEvents uint64
}

// Injector drives one Plan against one set of links on one engine.
//
// Sharded runs replicate the injector: every shard runs a full copy on its
// own engine, drawing identical named streams, so the flap/blackout
// processes stay in lockstep without cross-shard communication — each
// replica's SetLive closures only touch shard-local liveness state, and
// PortFilter restricts the receive-side frame hooks to the ports the shard
// owns. Per-replica stats then split two ways: process counters
// (LinkDown/UpEvents, BlackoutEvents) are identical on every replica (read
// any one), while hook counters (CorruptedFrames, LostPFC) count only
// owned ports (sum across replicas).
type Injector struct {
	eng       *sim.Engine
	plan      Plan
	links     []Link
	byName    map[string]Link
	installAt sim.Time
	stats     Stats

	// PortFilter, when set, limits which ports get receive-side frame
	// hooks (BER / PFC loss): only ports satisfying the predicate are
	// armed. The per-direction random streams are derived by link name and
	// direction — never by installation order — so replicas arming
	// disjoint port sets still draw the exact sequences a sequential
	// injector draws for those ports. Set before Install.
	PortFilter func(p *netdev.Port) bool
}

// NewInjector validates the plan and binds it to the links.
func NewInjector(eng *sim.Engine, plan Plan, links []Link) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	byName := make(map[string]Link, len(links))
	for _, l := range links {
		if l.SetLive == nil {
			return nil, fmt.Errorf("faults: link %q has no SetLive", l.Name)
		}
		if _, dup := byName[l.Name]; dup {
			return nil, fmt.Errorf("faults: duplicate link name %q", l.Name)
		}
		byName[l.Name] = l
	}
	for _, ev := range plan.Scheduled {
		if _, ok := byName[ev.Link]; !ok {
			return nil, fmt.Errorf("faults: scheduled event names unknown link %q", ev.Link)
		}
	}
	return &Injector{eng: eng, plan: plan, links: links, byName: byName}, nil
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// CarrierDrops sums frames lost to dead carriers across both ports of every
// bound link — the damage the carrier faults actually did. In a sharded run
// this reads ports on every shard, so call it only while no epoch is in
// flight (after the final barrier); it is then identical on every replica.
func (in *Injector) CarrierDrops() uint64 {
	var total uint64
	for _, l := range in.links {
		if l.A != nil {
			total += l.A.Stats().CarrierDrops
		}
		if l.B != nil {
			total += l.B.Stats().CarrierDrops
		}
	}
	return total
}

// owns reports whether this injector should arm receive hooks on p.
func (in *Injector) owns(p *netdev.Port) bool {
	return p != nil && (in.PortFilter == nil || in.PortFilter(p))
}

// Install arms the plan: receive hooks for frame faults, Poisson flap
// processes, scheduled events and blackouts. Call once, before Run.
func (in *Injector) Install() {
	in.installAt = in.eng.Now()

	if in.plan.BER > 0 || in.plan.PFCLossRate > 0 {
		for _, l := range in.links {
			// One stream per direction: arrival order on a single
			// direction of a link is deterministic, so draws are too. (A
			// single shared stream would interleave the two directions in
			// wall-arrival order, which differs between the sequential and
			// sharded engines when the link crosses a shard boundary.)
			if in.owns(l.A) {
				l.A.RxFault = in.frameHook(in.eng.Rand(in.plan.stream() + "/frame/" + l.Name + "/a"))
			}
			if in.owns(l.B) {
				l.B.RxFault = in.frameHook(in.eng.Rand(in.plan.stream() + "/frame/" + l.Name + "/b"))
			}
		}
	}

	if in.plan.FlapRate > 0 {
		for _, l := range in.links {
			if in.plan.LinkFilter != nil && !in.plan.LinkFilter(l.Name) {
				continue
			}
			l := l
			r := in.eng.Rand(in.plan.stream() + "/flap/" + l.Name)
			in.scheduleFlap(l, r)
		}
	}

	for _, ev := range in.plan.Scheduled {
		ev := ev
		l := in.byName[ev.Link]
		in.eng.ScheduleAt(ev.At, func() { in.setLink(l, ev.Up) })
	}

	for _, b := range in.plan.Blackouts {
		b := b
		var hit []Link
		for _, l := range in.links {
			if l.AName == b.Switch || l.BName == b.Switch {
				hit = append(hit, l)
			}
		}
		in.eng.ScheduleAt(b.At, func() {
			in.stats.BlackoutEvents++
			for _, l := range hit {
				in.setLink(l, false)
			}
		})
		in.eng.ScheduleAt(b.At+b.Duration, func() {
			for _, l := range hit {
				in.setLink(l, true)
			}
		})
	}
}

// setLink flips a link and counts the transition.
func (in *Injector) setLink(l Link, up bool) {
	l.SetLive(up)
	if up {
		in.stats.LinkUpEvents++
	} else {
		in.stats.LinkDownEvents++
	}
}

// scheduleFlap arms the next down event of l's Poisson flap process.
func (in *Injector) scheduleFlap(l Link, r *sim.Rand) {
	meanGap := sim.Duration(float64(sim.Second) / in.plan.FlapRate)
	gap := r.ExpDuration(meanGap)
	in.eng.Schedule(gap, func() { in.fireFlap(l, r) })
}

// fireFlap takes l down, schedules its recovery, and re-arms the process
// while the flap window is open.
func (in *Injector) fireFlap(l Link, r *sim.Rand) {
	if in.plan.FlapWindow > 0 && in.eng.Now() >= in.installAt+in.plan.FlapWindow {
		return // window closed: no new outages, traffic drains
	}
	down := in.plan.FlapDowntime
	if !in.plan.FlapFixed {
		down = r.ExpDuration(in.plan.FlapDowntime)
		if down <= 0 {
			down = 1 // at least one tick of outage
		}
	}
	in.setLink(l, false)
	in.eng.Schedule(down, func() { in.setLink(l, true) })
	meanGap := sim.Duration(float64(sim.Second) / in.plan.FlapRate)
	gap := r.ExpDuration(meanGap)
	in.eng.Schedule(down+gap, func() { in.fireFlap(l, r) })
}

// frameHook builds the receive-side vetting hook: data frames die with the
// BER-derived frame corruption probability, PFC frames die with
// PFCLossRate. Other control traffic (ACK/CNP/NACK) passes — the recovery
// protocol's own feedback channel is modeled as FEC-protected. The hook
// draws randomness only for frame kinds whose fault rate is nonzero, so a
// zero-rate plan consumes no random numbers at all.
func (in *Injector) frameHook(r *sim.Rand) netdev.FaultHook {
	ber, pfcLoss := in.plan.BER, in.plan.PFCLossRate
	return func(q *pkt.Packet) bool {
		switch q.Kind {
		case pkt.KindPFC:
			if pfcLoss > 0 && r.Float64() < pfcLoss {
				in.stats.LostPFC++
				return false
			}
		case pkt.KindData:
			if ber > 0 && r.Float64() < FrameCorruptionProb(q.Size, ber) {
				in.stats.CorruptedFrames++
				return false
			}
		}
		return true
	}
}

// FrameCorruptionProb converts a per-bit error rate into the probability at
// least one bit of a size-byte frame flips: 1 − (1−ber)^bits, computed in
// log space so tiny rates don't round to zero.
func FrameCorruptionProb(sizeBytes int, ber float64) float64 {
	bits := float64(8 * sizeBytes)
	return -math.Expm1(bits * math.Log1p(-ber))
}
