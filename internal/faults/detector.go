// PFC deadlock detection: build the wait-for graph over switches induced by
// persistent pauses and look for cycles. Up-down Clos routing is provably
// deadlock-free, so on a healthy fabric the detector must stay silent; it
// exists for the degraded modes faults create and for non-Clos wirings.
package faults

import (
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
)

// DetectorStats counts detector activity.
type DetectorStats struct {
	// Scans is how many periodic sweeps ran.
	Scans uint64
	// CyclesDetected counts confirmed wait-for cycles (one per confirmation,
	// not per scan).
	CyclesDetected uint64
	// CyclesBroken counts forced resumes issued to break confirmed cycles.
	CyclesBroken uint64
}

// DeadlockDetector periodically rebuilds the paused-queue wait-for graph:
// an edge S→T means some egress port of switch S is PFC-paused by its peer
// port on switch T — S cannot drain until T uncongests. A cycle among
// switches is the classic PFC deadlock signature. To keep false positives
// at zero on healthy fabrics (where pauses are short-lived), an edge only
// enters the graph once its pause has persisted for MinPauseAge, and a
// cycle must additionally be seen on Confirm consecutive scans before it is
// reported.
type DeadlockDetector struct {
	// Period is the scan interval.
	Period sim.Duration
	// MinPauseAge filters transient pauses out of the graph.
	MinPauseAge sim.Duration
	// Confirm is how many consecutive scans must agree before a cycle is
	// reported (and optionally broken).
	Confirm int
	// Break enables the documented degraded mode: force-resume one paused
	// port on the confirmed cycle, trading a possible headroom spill (or,
	// exhausted, a counted lossless violation) for forward progress.
	Break bool
	// OnCycle, if set, observes each confirmed cycle (switch names in
	// wait-for order).
	OnCycle func(cycle []string)

	eng      *sim.Engine
	switches []*switchsim.Switch
	index    map[*switchsim.Switch]int
	streak   int
	stopped  bool
	stats    DetectorStats
	last     []string
}

// NewDeadlockDetector builds a detector over the given switches with
// defaults: 100 µs period, 3-scan confirmation, 300 µs minimum pause age,
// detection only (no breaking).
func NewDeadlockDetector(eng *sim.Engine, switches []*switchsim.Switch) *DeadlockDetector {
	d := &DeadlockDetector{
		Period:      100 * sim.Microsecond,
		MinPauseAge: 300 * sim.Microsecond,
		Confirm:     3,
		eng:         eng,
		switches:    switches,
		index:       make(map[*switchsim.Switch]int, len(switches)),
	}
	for i, sw := range switches {
		d.index[sw] = i
	}
	return d
}

// Stats returns a snapshot of the detector counters.
func (d *DeadlockDetector) Stats() DetectorStats { return d.stats }

// LastCycle returns the most recently confirmed cycle (switch names), or
// nil if none was ever confirmed.
func (d *DeadlockDetector) LastCycle() []string { return d.last }

// Start arms the periodic scan.
func (d *DeadlockDetector) Start() {
	d.stopped = false
	d.eng.Schedule(d.Period, d.scan)
}

// Stop halts scanning after the current tick.
func (d *DeadlockDetector) Stop() { d.stopped = true }

// waitEdge is one persistent pause: from's egress port is paused by its
// peer on switch to.
type waitEdge struct {
	from, to int
	port     *netdev.Port
	prio     int
}

// scan is one self-rescheduling detection sweep (engine-driven mode).
func (d *DeadlockDetector) scan() {
	if d.stopped {
		return
	}
	d.ScanOnce()
	d.eng.Schedule(d.Period, d.scan)
}

// ScanOnce runs exactly one detection sweep at the current simulated time
// without rescheduling. The sharded conductor calls this at every
// Period-multiple barrier — when all shard clocks agree and no events are
// in flight, so the cross-shard port reads are race-free — instead of
// letting one shard's engine drive the scan chain.
func (d *DeadlockDetector) ScanOnce() {
	d.stats.Scans++

	edges := d.collectEdges()
	cycle := findCycle(len(d.switches), edges)
	if cycle == nil {
		d.streak = 0
	} else {
		d.streak++
		if d.streak >= d.Confirm {
			d.confirm(cycle, edges)
			d.streak = 0
		}
	}
}

// collectEdges builds the wait-for edge list from pauses older than
// MinPauseAge whose upstream peer is another monitored switch.
func (d *DeadlockDetector) collectEdges() []waitEdge {
	now := d.eng.Now()
	var edges []waitEdge
	for i, sw := range d.switches {
		for pi := 0; pi < sw.NumPorts(); pi++ {
			port := sw.Port(pi)
			peerOwner, ok := port.Peer().Owner().(*switchsim.Switch)
			if !ok {
				continue // paused by a host NIC: cannot be part of a cycle
			}
			j, ok := d.index[peerOwner]
			if !ok {
				continue
			}
			for prio := 0; prio < pkt.NumPriorities; prio++ {
				if port.Paused(prio) && now-port.PausedSince(prio) >= d.MinPauseAge {
					edges = append(edges, waitEdge{from: i, to: j, port: port, prio: prio})
				}
			}
		}
	}
	return edges
}

// confirm reports (and optionally breaks) a confirmed cycle.
func (d *DeadlockDetector) confirm(cycle []int, edges []waitEdge) {
	d.stats.CyclesDetected++
	names := make([]string, len(cycle))
	for i, n := range cycle {
		names[i] = d.switches[n].Name()
	}
	d.last = names
	if d.OnCycle != nil {
		d.OnCycle(names)
	}
	if !d.Break {
		return
	}
	// Break the first wait-for edge on the cycle: force-resume the paused
	// port so its switch drains again. The downstream MMU may spill into
	// headroom — a counted, documented degradation, not silent corruption.
	next := make(map[int]int, len(cycle))
	for i, n := range cycle {
		next[n] = cycle[(i+1)%len(cycle)]
	}
	for _, e := range edges {
		if next[e.from] == e.to && e.port.ForceResume(e.prio) {
			d.stats.CyclesBroken++
			return
		}
	}
}

// findCycle runs iterative DFS over the wait-for digraph and returns one
// cycle's node sequence, or nil.
func findCycle(n int, edges []waitEdge) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u→v: unwind the gray path v..u.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into wait-for order v → ... is already implicit;
				// present as v, ..., u following wait direction.
				for l, r := 1, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}
