// The no-progress watchdog: a cheap, mechanism-agnostic stall detector that
// complements the structural deadlock detector. The engine keeps firing
// events (timers, scans) even when the fabric is wedged, so "events are
// happening" is not evidence of progress; the watchdog instead samples a
// delivery counter and flags windows where packets sat in switch buffers
// but none reached a host.
package faults

import (
	"l2bm/internal/sim"
)

// Watchdog periodically compares a monotone progress counter (delivered
// data packets) against the previous sample. A window with zero progress
// while switch buffers still hold bytes is a stall: buffered traffic that
// is not moving. RTO quiet periods do not trip it — when every packet has
// either been delivered or dropped, residency is zero and silence is
// legitimate.
type Watchdog struct {
	// Window is the sampling interval; it should comfortably exceed the
	// longest legitimate pause a draining fabric can take (PFC pause
	// bursts, multi-hop serialization), so defaults are milliseconds.
	Window sim.Duration
	// Progress returns the monotone delivered-packet counter.
	Progress func() uint64
	// Resident returns total bytes parked in switch buffers.
	Resident func() int64
	// OnStall, if set, observes each stalled window.
	OnStall func(at sim.Time)

	eng     *sim.Engine
	last    uint64
	primed  bool
	stopped bool
	pending sim.EventRef // the armed tick, cancelled on Stop/restart

	// Stalls counts no-progress windows observed.
	Stalls uint64
	// FirstStallAt records when the first stall was declared.
	FirstStallAt sim.Time
}

// NewWatchdog builds a watchdog with a 2 ms default window.
func NewWatchdog(eng *sim.Engine, progress func() uint64, resident func() int64) *Watchdog {
	return &Watchdog{
		Window:   2 * sim.Millisecond,
		Progress: progress,
		Resident: resident,
		eng:      eng,
	}
}

// Start arms the periodic check (engine-driven mode). Restarting after a
// Stop re-primes: the first full Window after the resume is measured fresh,
// so a pause spanning an otherwise-stalled interval cannot produce a
// spurious stall, and any tick left pending from the previous incarnation
// is cancelled rather than resuming as a second, phase-shifted chain.
func (w *Watchdog) Start() {
	w.pending.Cancel()
	w.stopped = false
	w.Prime()
	w.pending = w.eng.Schedule(w.Window, w.tick)
}

// Stop halts checking and disarms the pending tick, so a later Start
// cannot inherit the old chain (which would double the cadence and halve
// the effective no-progress window).
func (w *Watchdog) Stop() {
	w.stopped = true
	w.pending.Cancel()
	w.pending = sim.EventRef{}
}

// Prime snapshots the progress counter without arming the engine-driven
// tick chain — the sharded conductor's replacement for Start: it primes
// once at install time and then calls TickOnce at every Window-multiple
// barrier.
func (w *Watchdog) Prime() {
	w.last = w.Progress()
	w.primed = true
}

// TickOnce runs exactly one no-progress check at the current simulated
// time without rescheduling. Safe to call at a sharded barrier: all shard
// clocks agree, no events are in flight, and Progress/Resident closures
// may aggregate across shards.
func (w *Watchdog) TickOnce() {
	cur := w.Progress()
	if w.primed && cur == w.last && w.Resident() > 0 {
		if w.Stalls == 0 {
			w.FirstStallAt = w.eng.Now()
		}
		w.Stalls++
		if w.OnStall != nil {
			w.OnStall(w.eng.Now())
		}
	}
	w.last = cur
}

func (w *Watchdog) tick() {
	if w.stopped {
		return
	}
	w.TickOnce()
	w.pending = w.eng.Schedule(w.Window, w.tick)
}
