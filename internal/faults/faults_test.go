package faults

import (
	"math"
	"reflect"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
)

func TestPlanValidateRejectsGarbage(t *testing.T) {
	bad := []Plan{
		{FlapRate: math.NaN()},
		{FlapRate: math.Inf(1)},
		{FlapRate: -1},
		{FlapRate: 10}, // flapping without a downtime
		{FlapRate: 10, FlapDowntime: sim.Microsecond, FlapWindow: -1},
		{BER: math.NaN()},
		{BER: -0.1},
		{BER: 1},
		{PFCLossRate: math.NaN()},
		{PFCLossRate: 1.5},
		{Blackouts: []Blackout{{Switch: "sw", At: 0, Duration: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: plan %+v accepted", i, p)
		}
	}
	good := Plan{FlapRate: 100, FlapDowntime: 20 * sim.Microsecond, BER: 1e-6, PFCLossRate: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !good.Active() {
		t.Error("plan with faults reported inactive")
	}
	zero := Plan{}
	if zero.Active() {
		t.Error("zero plan reported active")
	}
}

func TestFrameCorruptionProb(t *testing.T) {
	if p := FrameCorruptionProb(pkt.MTUBytes, 0); p != 0 {
		t.Errorf("prob at BER 0 = %v", p)
	}
	p := FrameCorruptionProb(pkt.MTUBytes, 1e-6)
	approx := 8 * float64(pkt.MTUBytes) * 1e-6 // small-rate linearization
	if math.Abs(p-approx)/approx > 0.01 {
		t.Errorf("prob = %v, want ≈ %v", p, approx)
	}
	if FrameCorruptionProb(2*pkt.MTUBytes, 1e-6) <= p {
		t.Error("corruption probability must grow with frame size")
	}
}

// fakeNode is a minimal netdev.Node for injector-level tests.
type fakeNode struct{ name string }

func (n *fakeNode) HandleArrival(*pkt.Packet, *netdev.Port) {}
func (n *fakeNode) Name() string                            { return n.name }

// testLink builds one cable between two fake nodes and records SetLive
// transitions with timestamps.
func testLink(eng *sim.Engine, name string) (Link, *[]bool) {
	a, b := &fakeNode{name + ".a"}, &fakeNode{name + ".b"}
	pa, pb := netdev.Connect(eng, a, b, 25e9, sim.Microsecond)
	var states []bool
	l := Link{
		Name: name, A: pa, B: pb, AName: a.name, BName: b.name,
		SetLive: func(up bool) {
			states = append(states, up)
			pa.SetCarrier(up)
			pb.SetCarrier(up)
		},
	}
	return l, &states
}

func TestInjectorRejectsBadBindings(t *testing.T) {
	eng := sim.NewEngine(1)
	l1, _ := testLink(eng, "l1")
	noLive := l1
	noLive.SetLive = nil
	if _, err := NewInjector(eng, Plan{}, []Link{noLive}); err == nil {
		t.Error("link without SetLive accepted")
	}
	if _, err := NewInjector(eng, Plan{}, []Link{l1, l1}); err == nil {
		t.Error("duplicate link names accepted")
	}
	plan := Plan{Scheduled: []ScheduledEvent{{Link: "ghost", At: 0, Up: false}}}
	if _, err := NewInjector(eng, plan, []Link{l1}); err == nil {
		t.Error("scheduled event for unknown link accepted")
	}
}

func TestScheduledEventsFireInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	l, states := testLink(eng, "l1")
	plan := Plan{Scheduled: []ScheduledEvent{
		{Link: "l1", At: sim.Millisecond, Up: false},
		{Link: "l1", At: 2 * sim.Millisecond, Up: true},
	}}
	inj, err := NewInjector(eng, plan, []Link{l})
	if err != nil {
		t.Fatal(err)
	}
	inj.Install()
	eng.Run(3 * sim.Millisecond)

	if want := []bool{false, true}; !reflect.DeepEqual(*states, want) {
		t.Fatalf("transitions = %v, want %v", *states, want)
	}
	st := inj.Stats()
	if st.LinkDownEvents != 1 || st.LinkUpEvents != 1 {
		t.Errorf("stats = %+v, want 1 down / 1 up", st)
	}
}

func TestZeroRatePlanInstallsNoHooks(t *testing.T) {
	eng := sim.NewEngine(1)
	l, _ := testLink(eng, "l1")
	inj, err := NewInjector(eng, Plan{FlapRate: 0, BER: 0, PFCLossRate: 0}, []Link{l})
	if err != nil {
		t.Fatal(err)
	}
	inj.Install()
	if l.A.RxFault != nil || l.B.RxFault != nil {
		t.Error("zero-rate plan installed receive hooks")
	}
	if eng.Pending() != 0 {
		t.Errorf("zero-rate plan scheduled %d events", eng.Pending())
	}
}

// flapTimes runs a Poisson flap plan and returns the carrier transition
// sequence (as observed by SetLive).
func flapTimes(seed int64, stream string) []bool {
	eng := sim.NewEngine(seed)
	l, states := testLink(eng, "l1")
	plan := Plan{
		Stream:   stream,
		FlapRate: 2000, FlapDowntime: 20 * sim.Microsecond,
		FlapWindow: 5 * sim.Millisecond,
	}
	inj, err := NewInjector(eng, plan, []Link{l})
	if err != nil {
		panic(err)
	}
	inj.Install()
	eng.Run(10 * sim.Millisecond)
	return *states
}

func TestFlapProcessDeterministicPerSeedAndStream(t *testing.T) {
	a, b := flapTimes(7, ""), flapTimes(7, "")
	if len(a) == 0 {
		t.Fatal("flap process produced no transitions")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed + plan produced different flap sequences")
	}
	// The sequence must strictly alternate down/up and end repaired.
	for i, up := range a {
		if up != (i%2 == 1) {
			t.Fatalf("transition %d = %v, want alternating starting down", i, up)
		}
	}
	if a[len(a)-1] != true {
		t.Error("flap window closed with the link still down")
	}
}

func TestWatchdogDistinguishesStallFromIdle(t *testing.T) {
	for _, tc := range []struct {
		name       string
		resident   int64
		progress   bool // counter advances every window
		wantStalls bool
	}{
		{"wedged buffers", 1 << 20, false, true},
		{"rto quiet period", 0, false, false},
		{"healthy delivery", 1 << 20, true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			var delivered uint64
			wd := NewWatchdog(eng, func() uint64 { return delivered }, func() int64 { return tc.resident })
			wd.Window = sim.Millisecond
			wd.Start()
			if tc.progress {
				var tick func()
				tick = func() {
					delivered++
					eng.Schedule(wd.Window/2, tick)
				}
				eng.Schedule(wd.Window/2, tick)
			}
			eng.Run(10 * sim.Millisecond)
			wd.Stop()
			if got := wd.Stalls > 0; got != tc.wantStalls {
				t.Errorf("stalls = %d, want stalls? %v", wd.Stalls, tc.wantStalls)
			}
			if tc.wantStalls && wd.FirstStallAt == 0 {
				t.Error("first stall time not recorded")
			}
		})
	}
}

// ringOfSwitches wires n switches pairwise (i ↔ (i+1)%n) and returns them
// plus, for each i, the port on switch i facing switch (i+1)%n.
func ringOfSwitches(eng *sim.Engine, n int) ([]*switchsim.Switch, []*netdev.Port) {
	sws := make([]*switchsim.Switch, n)
	for i := range sws {
		sws[i] = switchsim.NewSwitch(eng, "sw"+string(rune('0'+i)), switchsim.DefaultConfig(), core.NewDT())
	}
	fwd := make([]*netdev.Port, n)
	for i := range sws {
		j := (i + 1) % n
		pi, pj := netdev.Connect(eng, sws[i], sws[j], 100e9, sim.Microsecond)
		sws[i].AddPort(pi)
		sws[j].AddPort(pj)
		fwd[i] = pi
	}
	return sws, fwd
}

// pauseRing makes every switch in the ring pause its upstream neighbour's
// forward port: the wait-for cycle sw0→sw1→…→sw0 a cyclic dependency
// produces. Pauses are delivered as real PFC frames over the links.
func pauseRing(fwd []*netdev.Port) {
	for _, p := range fwd {
		// The peer (the next switch) asserts XOFF toward this port.
		p.Peer().SendPFC(pkt.PrioLossless, true)
	}
}

func TestDeadlockDetectorConfirmsCycle(t *testing.T) {
	eng := sim.NewEngine(1)
	sws, fwd := ringOfSwitches(eng, 3)
	pauseRing(fwd)

	var seen [][]string
	det := NewDeadlockDetector(eng, sws)
	det.OnCycle = func(c []string) { seen = append(seen, append([]string(nil), c...)) }
	det.Start()
	eng.Run(2 * sim.Millisecond)
	det.Stop()

	st := det.Stats()
	if st.CyclesDetected == 0 {
		t.Fatal("persistent 3-cycle never confirmed")
	}
	if st.CyclesBroken != 0 {
		t.Error("detection-only mode must not break cycles")
	}
	if len(det.LastCycle()) != 3 {
		t.Errorf("cycle = %v, want all 3 switches", det.LastCycle())
	}
	if len(seen) == 0 {
		t.Error("OnCycle observer never fired")
	}
	// Every port still paused: nothing was forced.
	for i, p := range fwd {
		if !p.Paused(pkt.PrioLossless) {
			t.Errorf("port %d resumed without Break", i)
		}
	}
}

func TestDeadlockDetectorBreaksCycleWhenAsked(t *testing.T) {
	eng := sim.NewEngine(1)
	sws, fwd := ringOfSwitches(eng, 3)
	pauseRing(fwd)

	det := NewDeadlockDetector(eng, sws)
	det.Break = true
	det.Start()
	eng.Run(2 * sim.Millisecond)
	det.Stop()

	if det.Stats().CyclesBroken == 0 {
		t.Fatal("Break mode never forced a resume")
	}
	resumed := 0
	for _, p := range fwd {
		if !p.Paused(pkt.PrioLossless) {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("no port actually resumed")
	}
}

func TestDeadlockDetectorQuietWithoutCycle(t *testing.T) {
	eng := sim.NewEngine(1)
	sws, fwd := ringOfSwitches(eng, 3)
	// Acyclic waits: sw0 waits on sw1, sw1 waits on sw2; sw2 is free.
	fwd[0].Peer().SendPFC(pkt.PrioLossless, true)
	fwd[1].Peer().SendPFC(pkt.PrioLossless, true)

	det := NewDeadlockDetector(eng, sws)
	det.Start()
	eng.Run(2 * sim.Millisecond)
	det.Stop()

	st := det.Stats()
	if st.Scans == 0 {
		t.Fatal("detector never scanned")
	}
	if st.CyclesDetected != 0 {
		t.Errorf("false positive: %d cycles on an acyclic wait graph", st.CyclesDetected)
	}
}

func TestDeadlockDetectorIgnoresTransientPauses(t *testing.T) {
	eng := sim.NewEngine(1)
	sws, fwd := ringOfSwitches(eng, 2)
	// A full 2-cycle that resolves before MinPauseAge: both sides XON after
	// 150 µs, under the 300 µs age filter.
	pauseRing(fwd)
	eng.Schedule(150*sim.Microsecond, func() {
		for _, p := range fwd {
			p.Peer().SendPFC(pkt.PrioLossless, false)
		}
	})

	det := NewDeadlockDetector(eng, sws)
	det.Start()
	eng.Run(2 * sim.Millisecond)
	det.Stop()

	if n := det.Stats().CyclesDetected; n != 0 {
		t.Errorf("transient pause reported as deadlock (%d cycles)", n)
	}
}

// TestWatchdogRestartDoesNotDoubleChain: before the fix, Stop only set a
// flag and left the pending tick queued; a later Start then ran TWO tick
// chains, phase-shifted by the stop interval — doubling the cadence,
// halving the effective no-progress window, and double-counting stalls.
func TestWatchdogRestartDoesNotDoubleChain(t *testing.T) {
	eng := sim.NewEngine(1)
	var delivered uint64
	ticks := 0
	wd := NewWatchdog(eng, func() uint64 { return delivered }, func() int64 { return 1 << 20 })
	wd.Window = sim.Millisecond
	wd.OnStall = func(sim.Time) { ticks++ }

	wd.Start()
	eng.Run(sim.Time(2500 * sim.Microsecond)) // ticks at 1ms, 2ms
	wd.Stop()
	eng.Run(sim.Time(5500 * sim.Microsecond)) // stopped: old chain must die
	wd.Start()                                // restart at 5.5ms: ticks at 6.5, 7.5, ...
	eng.Run(sim.Time(10 * sim.Millisecond))
	wd.Stop()

	// One chain: 2 ticks before the stop + ticks at 6.5/7.5/8.5/9.5 ms.
	// A doubled chain would also fire at 3/4/.../10 ms.
	if ticks != 6 {
		t.Errorf("observed %d stalled ticks, want 6 (single chain)", ticks)
	}
	if wd.Stalls != 6 {
		t.Errorf("Stalls = %d, want 6", wd.Stalls)
	}
}

// TestWatchdogRestartRePrimes: progress made while the watchdog is stopped
// must not be compared against the pre-stop snapshot — the first window
// after a restart is measured fresh, so a resumed interval cannot be
// misread. Conversely a genuine post-restart stall is still caught.
func TestWatchdogRestartRePrimes(t *testing.T) {
	eng := sim.NewEngine(1)
	var delivered uint64
	wd := NewWatchdog(eng, func() uint64 { return delivered }, func() int64 { return 1 << 20 })
	wd.Window = sim.Millisecond

	wd.Start()
	// Healthy progress through the first window.
	eng.Schedule(500*sim.Microsecond, func() { delivered++ })
	eng.Run(sim.Time(1500 * sim.Microsecond))
	if wd.Stalls != 0 {
		t.Fatalf("healthy window stalled (%d)", wd.Stalls)
	}
	wd.Stop()

	// Progress happens while paused; then restart with NO further progress.
	delivered += 10
	eng.Run(sim.Time(3500 * sim.Microsecond))
	wd.Start()
	eng.Run(sim.Time(4200 * sim.Microsecond)) // restart was at 3.5ms; first tick due 4.5ms
	if wd.Stalls != 0 {
		t.Fatalf("stall declared before a full post-restart window elapsed (%d)", wd.Stalls)
	}
	eng.Run(sim.Time(6 * sim.Millisecond)) // windows at 4.5ms and 5.5ms: no progress → stalls
	if wd.Stalls != 2 {
		t.Errorf("post-restart stalls = %d, want 2", wd.Stalls)
	}
}
