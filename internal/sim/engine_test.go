package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Duration{5 * Microsecond, Microsecond, 3 * Microsecond} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()

	want := []Time{Microsecond, 3 * Microsecond, 5 * Microsecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(Microsecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of scheduling order: pos %d got %d", i, v)
		}
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(Millisecond, func() { fired++ })
	e.Schedule(3*Millisecond, func() { fired++ })

	end := e.Run(2 * Millisecond)
	if end != 2*Millisecond {
		t.Errorf("Run returned %v, want clock parked at horizon 2ms", end)
	}
	if fired != 1 {
		t.Errorf("fired %d events before horizon, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}

	e.RunAll()
	if fired != 2 {
		t.Errorf("fired %d after RunAll, want 2", fired)
	}
}

func TestEngineZeroDelayFiresAfterCurrentInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(Microsecond, func() {
		e.Schedule(0, func() { order = append(order, "child") })
		order = append(order, "parent")
	})
	e.Schedule(Microsecond, func() { order = append(order, "sibling") })
	e.RunAll()

	want := []string{"parent", "sibling", "child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ref := e.Schedule(Microsecond, func() { fired = true })
	if !ref.Pending() {
		t.Fatal("event should be pending after scheduling")
	}
	if !ref.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if ref.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	var ref EventRef
	ref = e.Schedule(Microsecond, func() {})
	e.RunAll()
	if ref.Cancel() {
		t.Fatal("cancelling a fired event should report false")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(Microsecond, func() { fired++; e.Stop() })
	e.Schedule(2*Microsecond, func() { fired++ })
	e.Run(Second)
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (Stop should halt the loop)", fired)
	}
	e.Run(Second)
	if fired != 2 {
		t.Fatalf("fired %d after resume, want 2", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past should panic")
			}
		}()
		e.ScheduleAt(0, func() {})
	})
	e.RunAll()
}

// Property: for any set of delays, events fire in nondecreasing time order
// and every non-cancelled event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) > 2000 {
			delays = delays[:2000]
		}
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Duration(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if len(fireTimes) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Duration(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of schedule/cancel never fire cancelled
// events and always fire the rest.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		type tracked struct {
			ref       EventRef
			cancelled bool
			fired     bool
		}
		evs := make([]*tracked, 200)
		for i := range evs {
			tr := &tracked{}
			tr.ref = e.Schedule(Duration(rng.Intn(1000)), func() { tr.fired = true })
			evs[i] = tr
		}
		for _, tr := range evs {
			if rng.Intn(2) == 0 {
				tr.ref.Cancel()
				tr.cancelled = true
			}
		}
		e.RunAll()
		for _, tr := range evs {
			if tr.cancelled == tr.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			e.Schedule(Nanosecond, next)
		}
	}
	b.ResetTimer()
	e.Schedule(Nanosecond, next)
	e.RunAll()
}

func BenchmarkEngineChurn1k(b *testing.B) {
	// Keeps a 1k-deep queue while cycling events: the switch-fabric steady
	// state the simulator lives in.
	e := NewEngine(1)
	depth := 1000
	var reschedule func()
	fired := 0
	reschedule = func() {
		fired++
		if fired < b.N {
			e.Schedule(Duration(1+fired%97)*Nanosecond, reschedule)
		}
	}
	for i := 0; i < depth; i++ {
		e.Schedule(Duration(i)*Nanosecond, reschedule)
	}
	b.ResetTimer()
	e.RunAll()
}

func TestEngineCompactionBoundsPendingUnderRearm(t *testing.T) {
	// Models a DCQCN-style retransmission timer: every "packet" arms a
	// far-future RTO and immediately cancels it when the "ack" arrives a
	// tick later. Without compaction the heap holds every dead slot until
	// its far-future timestamp pops, so Pending() grows with the rearm
	// rate times the backoff horizon; with compaction it stays bounded by
	// the live count plus a constant.
	e := NewEngine(7)
	const rounds = 50_000
	const rto = Duration(10) * Second // far beyond the run horizon

	maxPending := 0
	var prev EventRef
	var tick func()
	i := 0
	tick = func() {
		if prev.Pending() {
			if !prev.Cancel() {
				t.Fatal("cancel of pending timer failed")
			}
		}
		if i >= rounds {
			return
		}
		i++
		prev = e.Schedule(rto, func() { t.Error("cancelled RTO fired") })
		if p := e.Pending(); p > maxPending {
			maxPending = p
		}
		e.Schedule(Microsecond, tick)
	}
	e.Schedule(Microsecond, tick)
	e.Run(Duration(rounds+10) * Microsecond)

	// Live events at any instant: one RTO + one tick (+ transient slack
	// around the compaction trigger). Anything near `rounds` means dead
	// slots accumulated.
	const bound = 4*compactThreshold + 16
	if maxPending > bound {
		t.Fatalf("Pending() peaked at %d; want <= %d (compaction not bounding dead slots)", maxPending, bound)
	}
	if e.Cancelled() > 2*compactThreshold {
		t.Fatalf("Cancelled() = %d at end of run; want small residue", e.Cancelled())
	}
	if i != rounds {
		t.Fatalf("ran %d rounds, want %d", i, rounds)
	}
}

func TestEngineCompactionPreservesOrder(t *testing.T) {
	// Interleaves live events with heavy cancellation and checks the live
	// events still fire in exact (time, seq) order.
	e := NewEngine(3)
	var got []int
	for i := 0; i < 2000; i++ {
		i := i
		e.Schedule(Duration(i)*Microsecond, func() { got = append(got, i) })
		// Two far-future victims per live event, cancelled immediately —
		// enough pressure to trigger several compactions.
		a := e.Schedule(Second+Duration(i)*Microsecond, func() { t.Error("victim fired") })
		b := e.Schedule(2*Second+Duration(i)*Microsecond, func() { t.Error("victim fired") })
		a.Cancel()
		b.Cancel()
	}
	e.RunAll()
	if len(got) != 2000 {
		t.Fatalf("fired %d live events, want 2000", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: got %d", i, v)
		}
	}
}
