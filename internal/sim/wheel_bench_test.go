package sim

import (
	"fmt"
	"testing"
)

// BenchmarkWheelVsHeap measures steady-state scheduler throughput with a
// fixed population of pending events: every dispatched event immediately
// schedules a successor at a uniform-random offset within 1 ms, so the
// queue holds exactly `pending` events throughout. This is the hyperscale
// regime — a 100k-host fabric keeps hundreds of thousands of timers and
// in-flight frames pending — and isolates the queue data structure: the
// heap pays O(log n) sifts through a cache-hostile pointer array, the
// wheel pays O(1) bucket appends plus a cache-resident micro-heap.
//
// CI guards wheel >= 1.5x heap events/s at 100k and 1M pending via
// cmd/benchguard's -speedup check.
func BenchmarkWheelVsHeap(b *testing.B) {
	const span = Duration(1) << 30 // ~1.07 ms, power of two for a cheap mask
	for _, pending := range []int{1_000, 100_000, 1_000_000} {
		for _, kind := range []string{"heap", "wheel"} {
			name := fmt.Sprintf("%s-%s", kind, siSuffix(pending))
			b.Run(name, func(b *testing.B) {
				var eng *Engine
				if kind == "wheel" {
					eng = NewEngineWheel(1, WheelGranularityFor(Microsecond))
				} else {
					eng = NewEngine(1)
				}
				// Deterministic xorshift so both backends replay the same
				// offsets without touching the engine's named streams.
				x := uint64(88172645463325252)
				next := func() Duration {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					return Duration(x & uint64(span-1))
				}
				remaining := 0
				var churn ArgCallback
				churn = func(any) {
					remaining--
					if remaining <= 0 {
						eng.Stop()
						return
					}
					eng.ScheduleArg(next(), churn, nil)
				}
				for i := 0; i < pending; i++ {
					eng.ScheduleArg(next(), churn, nil)
				}
				// Untimed warm-up rotation: cycle the full population once
				// so bucket arrays and the event free list reach their
				// steady-state footprint before measurement starts.
				remaining = pending
				for remaining > 0 {
					eng.RunAll()
				}
				remaining = b.N
				b.ReportAllocs()
				b.ResetTimer()
				for remaining > 0 {
					eng.RunAll()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

func siSuffix(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%dM", n/1_000_000)
	}
	return fmt.Sprintf("%dk", n/1_000)
}
