package sim

import "testing"

// TestNextEventTimeEmptyQueue: a fresh engine (and one that has drained
// completely) reports no pending event.
func TestNextEventTimeEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	if at, ok := e.NextEventTime(); ok {
		t.Fatalf("empty engine reported a pending event at %v", at)
	}
	e.Schedule(10, func() {})
	e.RunAll()
	if at, ok := e.NextEventTime(); ok {
		t.Fatalf("drained engine reported a pending event at %v", at)
	}
}

// TestNextEventTimePeeksWithoutRunning: the peek must not advance the
// clock or fire anything.
func TestNextEventTimePeeksWithoutRunning(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(42, func() { fired = true })
	at, ok := e.NextEventTime()
	if !ok || at != 42 {
		t.Fatalf("peek = (%v, %v), want (42, true)", at, ok)
	}
	if fired {
		t.Fatal("peek fired the event")
	}
	if e.Now() != 0 {
		t.Fatalf("peek moved the clock to %v", e.Now())
	}
	// Peeking is idempotent.
	if at2, ok2 := e.NextEventTime(); !ok2 || at2 != 42 {
		t.Fatalf("second peek = (%v, %v), want (42, true)", at2, ok2)
	}
}

// TestNextEventTimeSkipsCancelledHead: cancelled records parked at the
// heap head (lazy cancellation) must be skipped — and reclaimed — so the
// peek reports the earliest *live* event.
func TestNextEventTimeSkipsCancelledHead(t *testing.T) {
	e := NewEngine(1)
	r1 := e.Schedule(5, func() {})
	r2 := e.Schedule(7, func() {})
	e.Schedule(9, func() {})
	r1.Cancel()
	r2.Cancel()
	at, ok := e.NextEventTime()
	if !ok || at != 9 {
		t.Fatalf("peek over cancelled heads = (%v, %v), want (9, true)", at, ok)
	}
	if got := e.Cancelled(); got != 0 {
		t.Fatalf("peek left %d cancelled slots unreclaimed at the head", got)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after head reclamation, want 1", got)
	}
	// The surviving event still fires normally.
	final := e.RunAll()
	if final != 9 {
		t.Fatalf("RunAll ended at %v, want 9", final)
	}
}

// TestNextEventTimeAllCancelled: when every queued event is cancelled the
// peek drains them all and reports emptiness.
func TestNextEventTimeAllCancelled(t *testing.T) {
	e := NewEngine(1)
	refs := make([]EventRef, 0, 8)
	for i := Duration(1); i <= 8; i++ {
		refs = append(refs, e.Schedule(i, func() {}))
	}
	for i := range refs {
		refs[i].Cancel()
	}
	if at, ok := e.NextEventTime(); ok {
		t.Fatalf("all-cancelled engine reported a live event at %v", at)
	}
	if e.Pending() != 0 || e.Cancelled() != 0 {
		t.Fatalf("peek left pending=%d cancelled=%d", e.Pending(), e.Cancelled())
	}
}

// TestNextEventTimeAfterCompaction: compaction rebuilds the heap and
// invalidates stale generations; the peek must keep answering correctly
// afterwards.
func TestNextEventTimeAfterCompaction(t *testing.T) {
	e := NewEngine(1)
	// Enough cancellations to cross compactThreshold with cancelled
	// outnumbering live: 100 doomed timers + 2 survivors.
	doomed := make([]EventRef, 0, 100)
	for i := 0; i < 100; i++ {
		doomed = append(doomed, e.Schedule(Duration(1000+i), func() {}))
	}
	e.Schedule(500, func() {})
	e.Schedule(2000, func() {})
	for i := range doomed {
		doomed[i].Cancel()
	}
	if e.Pending() >= 102 {
		t.Fatalf("compaction did not run: Pending() = %d", e.Pending())
	}
	at, ok := e.NextEventTime()
	if !ok || at != 500 {
		t.Fatalf("post-compaction peek = (%v, %v), want (500, true)", at, ok)
	}
	if got := e.Run(600); got != 600 {
		t.Fatalf("Run(600) ended at %v", got)
	}
	at, ok = e.NextEventTime()
	if !ok || at != 2000 {
		t.Fatalf("peek after partial run = (%v, %v), want (2000, true)", at, ok)
	}
}

// TestScheduleArrivalAtOrdersByKey: at an equal timestamp, keyed arrivals
// fire after every plain event of that instant, and among themselves in
// ascending key order regardless of the order they were scheduled in —
// the mode-invariant tie-break the sharded engine relies on.
func TestScheduleArrivalAtOrdersByKey(t *testing.T) {
	e := NewEngine(1)
	var order []string
	log := func(tag string) ArgCallback {
		return func(any) { order = append(order, tag) }
	}
	// Schedule arrivals first, in descending key order, then the plain
	// events: dispatch order must still be plain-first, key-ascending.
	e.ScheduleArrivalAt(10, log("k9"), nil, ArrivalKeyBit|9)
	e.ScheduleArrivalAt(10, log("k3"), nil, ArrivalKeyBit|3)
	e.ScheduleAt(10, func() { order = append(order, "plainA") })
	e.ScheduleAt(10, func() { order = append(order, "plainB") })
	e.ScheduleArrivalAt(10, log("k5"), nil, ArrivalKeyBit|5)
	e.RunAll()
	want := []string{"plainA", "plainB", "k3", "k5", "k9"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestScheduleArrivalAtCancel: keyed arrivals cancel and recycle exactly
// like plain events.
func TestScheduleArrivalAtCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ref := e.ScheduleArrivalAt(10, func(any) { fired = true }, nil, ArrivalKeyBit|1)
	if !ref.Pending() {
		t.Fatal("keyed arrival not pending after scheduling")
	}
	if !ref.Cancel() {
		t.Fatal("cancel of a pending keyed arrival returned false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled keyed arrival fired")
	}
}

// TestScheduleArrivalAtRejectsBareKey: keys without ArrivalKeyBit could
// collide with engine sequence numbers, so the engine refuses them.
func TestScheduleArrivalAtRejectsBareKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleArrivalAt accepted a key without ArrivalKeyBit")
		}
	}()
	e := NewEngine(1)
	e.ScheduleArrivalAt(10, func(any) {}, nil, 7)
}
