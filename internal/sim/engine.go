package sim

import (
	"fmt"
)

// Callback is the body of a scheduled event. It runs on the engine goroutine
// at the event's timestamp.
type Callback func()

// ArgCallback is the closure-free event body: the engine stores (fn, arg) in
// the pooled event record, so hot paths that would otherwise allocate a
// fresh closure per event (one per packet per hop in the netdev layer)
// instead pre-bind fn once and thread the per-event state through arg. A
// pointer-typed arg rides in the interface word without allocating.
type ArgCallback func(arg any)

// event is one pending entry in the queue. Events with equal timestamps fire
// in scheduling order (seq), which makes runs deterministic. Events are
// pooled; gen distinguishes incarnations so stale EventRefs stay inert.
// Exactly one of fn/afn is non-nil while the event is live; arg is only
// meaningful alongside afn.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  Callback
	afn ArgCallback
	arg any

	// idx is the record's slot in Engine.all, stamped once at allocation.
	// Wheel buckets reference events by this index instead of by pointer so
	// the bucket arrays stay pointer-free (see wheelEntry).
	idx uint32
}

// live reports whether the event still has a body to run (not cancelled,
// not yet dispatched).
func (ev *event) live() bool { return ev.fn != nil || ev.afn != nil }

// clear drops every callback reference. Called at each recycle point
// (cancel, dispatch, compaction) so a pooled event record can never keep a
// stale arg — typically a pooled packet — reachable from the free list.
func (ev *event) clear() {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value refers to no event and is safe to Cancel.
type EventRef struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the referenced event from firing. Cancelling an event that
// already fired, was already cancelled, or was never scheduled is a no-op.
// It reports whether the event was actually descheduled.
//
// A cancelled event's heap slot is reclaimed lazily: either when its
// timestamp pops, or by compaction once dead entries outnumber live ones
// (see Engine.maybeCompact) — so rearm-heavy users (DCQCN RTO backoff) keep
// Pending() proportional to the number of *live* timers, not to the rearm
// rate times the backoff horizon.
func (r *EventRef) Cancel() bool {
	if r.ev == nil || r.ev.gen != r.gen || !r.ev.live() {
		r.ev = nil
		return false
	}
	r.ev.clear() // fires as a no-op and recycles; drops any arg reference now
	r.ev = nil
	if r.eng != nil {
		r.eng.cancelled++
		r.eng.maybeCompact()
	}
	return true
}

// Pending reports whether the referenced event is still scheduled.
func (r *EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.live()
}

// Engine is a deterministic discrete-event scheduler built on a 4-ary heap
// with pooled event records.
//
// The zero value is not usable; construct with NewEngine. All methods must
// be called from the goroutine running the simulation (event callbacks or
// the caller of Run between runs).
type Engine struct {
	now     Time
	queue   []*event
	free    []*event
	seq     uint64
	stopped bool
	fired   uint64
	rng     *Source

	// cancelled counts events cancelled but still occupying heap slots
	// (reclaimed lazily on pop or by compaction).
	cancelled int

	// Interrupt polling (SetInterrupt): intrFn is consulted every intrEvery
	// fired events; returning true stops the run like Stop. Event-count
	// based rather than sim-time based so a zero-delay livelock — events
	// firing forever at a frozen clock — still gets interrupted.
	intrFn    func() bool
	intrEvery uint64
	intrCount uint64

	// w, when non-nil, is the hierarchical timer-wheel backend (see
	// wheel.go): far-future events park in O(1) buckets and are flushed
	// into the heap a tick at a time, so the heap stays cache-resident no
	// matter how many events are pending. Dispatch always happens from the
	// heap in (at, seq) order, so results are byte-identical either way.
	w *wheel

	// all registers every event record ever allocated (wheel backend only).
	// Records are pooled and never released, so the registry both keeps
	// bucket-resident events reachable and lets buckets refer to them by
	// uint32 index instead of by pointer.
	all []*event
}

// NewEngine returns an engine whose clock starts at zero and whose master
// random source is seeded with seed. Events are queued on the exact 4-ary
// heap; NewEngineWheel selects the timer-wheel backend instead.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewSource(seed)}
}

// NewEngineWheel returns an engine backed by the hierarchical timer wheel:
// same API, same byte-identical dispatch order, O(1) scheduling instead of
// O(log n) once hundreds of thousands of events are pending. granularity is
// the wheel's tick width (rounded down to a power of two of picoseconds);
// size it from the fabric with WheelGranularityFor, or pass <= 0 for
// DefaultWheelGranularity.
func NewEngineWheel(seed int64, granularity Duration) *Engine {
	return &Engine{rng: NewSource(seed), w: newWheel(granularity)}
}

// WheelGranularity returns the wheel tick width, or 0 when the engine runs
// on the plain heap.
func (e *Engine) WheelGranularity() Duration {
	if e.w == nil {
		return 0
	}
	return e.w.granularity()
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far (cancelled events are
// not counted).
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of events still queued — heap and wheel
// buckets combined — including cancelled events whose slots have not been
// reclaimed yet (compaction bounds those at roughly the live count plus a
// constant).
func (e *Engine) Pending() int {
	n := len(e.queue)
	if e.w != nil {
		n += e.w.count
	}
	return n
}

// NextEventTime returns the timestamp of the earliest live event still
// queued, or (0, false) when no live event is pending. Cancelled records
// parked at the head of the heap (lazy cancellation) are drained and
// recycled on the way, so the answer is exact even right after a burst of
// cancels or a compaction. The clock does not move and no callback runs —
// this is the conservative-time peek the psim epoch conductor uses to
// compute each barrier window, and it doubles as an idle probe for
// harnesses ("is anything left before the horizon?").
func (e *Engine) NextEventTime() (Time, bool) {
	for {
		for len(e.queue) > 0 {
			head := e.queue[0]
			if head.live() {
				return head.at, true
			}
			// Dead head: reclaim it exactly like Run would have.
			e.pop()
			e.recycleDead(head)
		}
		// Heap dry: flush the wheel's next bucket into the heap. The flush
		// only re-homes events (order is restored by the heap), so peeking
		// stays observer-free.
		if e.w == nil || !e.w.advance(e) {
			return 0, false
		}
	}
}

// recycleDead reclaims a cancelled event record discovered outside the
// normal dispatch path (heap-head drain, wheel flush): uncount it, clear
// it, invalidate stale EventRefs, and return it to the free list.
func (e *Engine) recycleDead(ev *event) {
	if e.cancelled > 0 {
		e.cancelled--
	}
	ev.clear()
	ev.gen++
	e.free = append(e.free, ev)
}

// Cancelled returns the number of cancelled events still occupying heap
// slots (observability for the compaction policy).
func (e *Engine) Cancelled() int { return e.cancelled }

// Rand returns a named deterministic random stream derived from the engine
// seed. Equal names yield identical streams across runs.
func (e *Engine) Rand(name string) *Rand { return e.rng.Stream(name) }

// Schedule runs fn after delay. Scheduling into the past panics; a zero
// delay fires after all events already scheduled for the current instant.
func (e *Engine) Schedule(delay Duration, fn Callback) EventRef {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the absolute time at.
func (e *Engine) ScheduleAt(at Time, fn Callback) EventRef {
	if fn == nil {
		panic("sim: scheduling a nil callback")
	}
	ev := e.alloc(at)
	ev.fn = fn
	e.enqueue(ev)
	return EventRef{eng: e, ev: ev, gen: ev.gen}
}

// ScheduleArg runs fn(arg) after delay without allocating a closure: fn is
// typically pre-bound once per component (a port's transmit-done handler)
// and arg carries the per-event state (the packet in flight). Determinism is
// identical to Schedule — the event takes the next (at, seq) slot and the
// returned EventRef cancels/compacts exactly like a closure event.
func (e *Engine) ScheduleArg(delay Duration, fn ArgCallback, arg any) EventRef {
	return e.ScheduleArgAt(e.now+delay, fn, arg)
}

// ScheduleArgAt runs fn(arg) at the absolute time at.
func (e *Engine) ScheduleArgAt(at Time, fn ArgCallback, arg any) EventRef {
	if fn == nil {
		panic("sim: scheduling a nil callback")
	}
	ev := e.alloc(at)
	ev.afn = fn
	ev.arg = arg
	e.enqueue(ev)
	return EventRef{eng: e, ev: ev, gen: ev.gen}
}

// ArrivalKeyBit is set in every explicit ordering key passed to
// ScheduleArrivalAt. Plain Schedule/ScheduleArg events carry the engine's
// monotonically increasing sequence counter as their tie-break key, which
// stays far below 2^63 in any feasible run; keyed arrivals live in the
// upper half of the key space so that, at an equal timestamp, a frame
// arrival always fires after every locally scheduled event of that instant
// — in both the sequential and the sharded engine, which is what makes the
// tie-break mode-invariant.
const ArrivalKeyBit = uint64(1) << 63

// ScheduleArrivalAt runs fn(arg) at the absolute time at, ordered among
// same-timestamp events by the caller-supplied key instead of the engine's
// scheduling sequence. The caller must guarantee keys are unique per
// (at, key) pair — netdev derives them as
// ArrivalKeyBit | portKey<<43 | txSeq, unique by construction. This is the
// primitive that makes cross-shard packet delivery deterministic: the key
// depends only on the wiring (which port sent the frame, and its how-manyth
// transmission it was), never on which engine scheduled the arrival or
// when, so the sequential engine and any shard count dispatch equal-time
// events in exactly the same order.
func (e *Engine) ScheduleArrivalAt(at Time, fn ArgCallback, arg any, key uint64) EventRef {
	if fn == nil {
		panic("sim: scheduling a nil callback")
	}
	if key&ArrivalKeyBit == 0 {
		panic("sim: arrival key missing ArrivalKeyBit")
	}
	ev := e.alloc(at)
	ev.seq = key // override the stamped sequence with the wiring-derived key
	ev.afn = fn
	ev.arg = arg
	e.enqueue(ev)
	return EventRef{eng: e, ev: ev, gen: ev.gen}
}

// enqueue routes a stamped event to the active backend: straight onto the
// heap, or through the wheel's tick router (which itself falls back to the
// heap for past-or-current ticks, keeping the heap the exact total order).
func (e *Engine) enqueue(ev *event) {
	if e.w != nil {
		e.w.insert(e, ev)
		return
	}
	e.push(ev)
}

// alloc pops a recycled event record (or heap-allocates one) and stamps the
// (at, seq) ordering key. Recycle points clear fn/afn/arg (see event.clear),
// and alloc re-clears defensively: a record that somehow carried a stale arg
// out of the free list must never leak it into a new incarnation.
func (e *Engine) alloc(at Time) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.clear()
	} else {
		ev = &event{}
		if e.w != nil {
			ev.idx = uint32(len(e.all))
			e.all = append(e.all, ev)
		}
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	return ev
}

// Stop makes Run return after the current event completes. Further Run calls
// resume from the stop point.
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs a poll the run loop consults every `every` fired
// events: when fn returns true, the current Run/RunAll stops exactly like
// Stop (resumable). fn(nil) disarms. The poll is counted in executed events,
// not simulated time, so it fires even inside a zero-delay event livelock
// where the clock never advances — the property the per-point wall-clock
// timeout needs. fn runs on the engine goroutine but MUST also be safe to
// call concurrently from other goroutines when the engine is driven by the
// sharded conductor (ctx.Err-style checks qualify). The poll never runs
// simulation code and draws no RNG, so an interrupt that does not fire is
// observer-free: results are byte-identical with or without it armed.
func (e *Engine) SetInterrupt(every uint64, fn func() bool) {
	if fn != nil && every == 0 {
		panic("sim: interrupt poll period must be positive")
	}
	e.intrFn = fn
	e.intrEvery = every
	e.intrCount = 0
}

// Run executes events in timestamp order until the queue empties, the clock
// would pass until, or Stop is called. It returns the simulated time at exit
// (== until when the horizon was reached, even if no event fired there).
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			// Heap dry: pull the wheel's next bucket in. All wheel events
			// sit at strictly later ticks than anything the heap held, so
			// the flushed bucket's head is the global minimum.
			if e.w == nil || !e.w.advance(e) {
				break
			}
			continue
		}
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		e.pop()
		e.dispatch(next)
		if e.intrFn != nil {
			if e.intrCount++; e.intrCount >= e.intrEvery {
				e.intrCount = 0
				if e.intrFn() {
					e.stopped = true
				}
			}
		}
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue is empty or Stop is called, with no
// time horizon. It returns the time of the last event.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			if e.w == nil || !e.w.advance(e) {
				break
			}
			continue
		}
		next := e.queue[0]
		e.pop()
		e.dispatch(next)
		if e.intrFn != nil {
			if e.intrCount++; e.intrCount >= e.intrEvery {
				e.intrCount = 0
				if e.intrFn() {
					e.stopped = true
				}
			}
		}
	}
	return e.now
}

// dispatch fires (or skips, when cancelled) one popped event and recycles it.
func (e *Engine) dispatch(ev *event) {
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	if fn != nil || afn != nil {
		e.now = ev.at
		e.fired++
	} else if e.cancelled > 0 {
		e.cancelled-- // a cancelled slot drained the normal way
	}
	// Clear before recycling AND before running the body: the callback may
	// recycle its packet arg into a pool and hand it to a brand-new event; a
	// stale ev.arg on the free list would alias that new owner (bugfix —
	// pooled-event reuse must never leak a reference to a pooled packet).
	ev.clear()
	ev.gen++
	e.free = append(e.free, ev)
	if fn != nil {
		fn()
	} else if afn != nil {
		afn(arg)
	}
}

// less orders events by (time, sequence).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts into the 4-ary min-heap.
func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

// pop removes the minimum element (e.queue[0]).
func (e *Engine) pop() {
	q := e.queue
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n == 0 {
		return
	}
	e.siftDown(0)
}

// siftDown restores the heap property below index i.
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(q[c], q[min]) {
				min = c
			}
		}
		if !less(q[min], q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// compactThreshold is the minimum number of cancelled slots before
// compaction is even considered; below it the lazy pop-side reclamation is
// cheaper than rebuilding the heap.
const compactThreshold = 64

// maybeCompact rebuilds the heap without dead entries once cancelled slots
// outnumber live ones (and there are enough of them to be worth the O(n)
// pass). This bounds Pending() at ~2× the live event count for rearm-heavy
// users that cancel far-future timers much faster than those timers pop.
func (e *Engine) maybeCompact() {
	total := len(e.queue)
	if e.w != nil {
		total += e.w.count
	}
	if e.cancelled < compactThreshold || 2*e.cancelled < total {
		return
	}
	e.compact()
}

// compact removes cancelled entries from the heap (and, on the wheel
// backend, from every bucket) and re-heapifies. Live events keep firing in
// exactly the same order: dispatch order is the total order (at, seq),
// which is independent of heap layout and bucket residency.
func (e *Engine) compact() {
	if e.w != nil {
		e.w.sweep(e)
	}
	old := e.queue
	q := old[:0]
	for _, ev := range old {
		if !ev.live() {
			ev.clear() // defensive: Cancel already dropped fn/afn/arg
			ev.gen++   // invalidate stale EventRefs before recycling
			e.free = append(e.free, ev)
			continue
		}
		q = append(q, ev)
	}
	for i := len(q); i < len(old); i++ {
		old[i] = nil
	}
	e.queue = q
	e.cancelled = 0
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}
