package sim

import (
	"math"
	"testing"
)

func TestStreamsAreReproducible(t *testing.T) {
	a := NewSource(42).Stream("arrivals")
	b := NewSource(42).Stream("arrivals")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-named streams diverged at draw %d", i)
		}
	}
}

func TestStreamsWithDifferentNamesDiffer(t *testing.T) {
	src := NewSource(42)
	a, b := src.Stream("arrivals"), src.Stream("sizes")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently named streams collided on %d/100 draws", same)
	}
}

func TestStreamsWithDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(1).Stream("arrivals")
	b := NewSource(2).Stream("arrivals")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided on %d/100 draws", same)
	}
}

func TestExpDurationMean(t *testing.T) {
	r := NewSource(7).Stream("exp")
	mean := 100 * Microsecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.ExpDuration(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.02 {
		t.Errorf("empirical mean %v, want within 2%% of %v", Duration(got), mean)
	}
}

func TestExpDurationNeverZero(t *testing.T) {
	r := NewSource(7).Stream("exp")
	for i := 0; i < 10000; i++ {
		if d := r.ExpDuration(Nanosecond); d < 1 {
			t.Fatalf("ExpDuration returned %v < 1ps", d)
		}
	}
	if d := r.ExpDuration(0); d != 1 {
		t.Errorf("ExpDuration(0) = %v, want 1ps floor", d)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSource(9).Stream("u")
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewSource(3).Stream("perm")
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestEngineRandIsDeterministic(t *testing.T) {
	e1, e2 := NewEngine(5), NewEngine(5)
	r1, r2 := e1.Rand("x"), e2.Rand("x")
	for i := 0; i < 100; i++ {
		if r1.Intn(1000) != r2.Intn(1000) {
			t.Fatal("engine-derived streams with equal seeds diverged")
		}
	}
}
