package sim

import (
	"testing"
	"testing/quick"
)

func TestTxTimeExactRates(t *testing.T) {
	tests := []struct {
		name  string
		bytes int
		rate  int64
		want  Duration
	}{
		{"one byte at 100G", 1, 100e9, 80 * Picosecond},
		{"one byte at 25G", 1, 25e9, 320 * Picosecond},
		{"MTU at 25G", 1000, 25e9, 320 * Nanosecond},
		{"MTU at 100G", 1000, 100e9, 80 * Nanosecond},
		{"64B control frame at 100G", 64, 100e9, 5120 * Picosecond},
		{"1MB at 25G", 1 << 20, 25e9, Duration(1<<20) * 320 * Picosecond},
		{"zero bytes", 0, 25e9, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TxTime(tt.bytes, tt.rate); got != tt.want {
				t.Errorf("TxTime(%d, %d) = %v, want %v", tt.bytes, tt.rate, got, tt.want)
			}
		})
	}
}

func TestTxTimeAdditive(t *testing.T) {
	// Serializing a+b bytes must cost exactly TxTime(a)+TxTime(b) at rates
	// where a byte time is integral; otherwise queues would drift.
	f := func(a, b uint16) bool {
		const rate = 25e9
		return TxTime(int(a)+int(b), rate) == TxTime(int(a), rate)+TxTime(int(b), rate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTxTimePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TxTime with zero rate should panic")
		}
	}()
	TxTime(1, 0)
}

func TestBytesOverInvertsTxTime(t *testing.T) {
	const rate = 100e9
	for _, n := range []int{1, 64, 999, 1500, 1 << 20} {
		d := TxTime(n, rate)
		if got := BytesOver(d, rate); got != int64(n) {
			t.Errorf("BytesOver(TxTime(%d)) = %d, want %d", n, got, n)
		}
	}
	if BytesOver(-Nanosecond, rate) != 0 {
		t.Error("BytesOver of negative duration should be 0")
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1ns"},
		{1200 * Nanosecond, "1.2us"},
		{Millisecond, "1ms"},
		{2 * Second, "2s"},
		{-Millisecond, "-1ms"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want 500ms", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Errorf("FromSeconds(1e-6) = %v, want 1us", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if (2 * Millisecond).Seconds() != 0.002 {
		t.Error("Seconds conversion wrong")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Error("Micros conversion wrong")
	}
	if (7 * Millisecond).Millis() != 7 {
		t.Error("Millis conversion wrong")
	}
	if (5 * Microsecond).Std().Microseconds() != 5 {
		t.Error("Std conversion wrong")
	}
}
