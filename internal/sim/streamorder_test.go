package sim

import "testing"

// TestStreamOrderIndependence is the sharding regression guard: shard-local
// wiring requests named streams (per-source workload arrival/size/dest
// streams, fault flap streams, switch ECN streams) in a different order
// than the sequential build does — each shard only instantiates its own
// slice of the cluster. The draws a stream yields must therefore depend
// only on (engine seed, stream name), never on which streams were created
// before it or how often.
func TestStreamOrderIndependence(t *testing.T) {
	names := []string{
		"rdma/arrivals/0", "rdma/sizes/0", "rdma/dests/0",
		"tcp/arrivals/17", "incast/queries", "incast/picks",
		"faults/flap/tor0-agg1", "switch/tor3/ecn",
	}
	draw := func(r *Rand) [4]uint64 {
		var out [4]uint64
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}

	// Reference: request streams in declaration order.
	ref := make(map[string][4]uint64, len(names))
	{
		e := NewEngine(12345)
		for _, n := range names {
			ref[n] = draw(e.Rand(n))
		}
	}

	// Reversed first-request order, interleaved with draws.
	{
		e := NewEngine(12345)
		for i := len(names) - 1; i >= 0; i-- {
			n := names[i]
			if got := draw(e.Rand(n)); got != ref[n] {
				t.Fatalf("stream %q drew %v when requested in reverse order, want %v", n, got, ref[n])
			}
		}
	}

	// Sparse order: only a subset requested, with unrelated streams created
	// and consumed in between (a shard that hosts two ToRs of eight).
	{
		e := NewEngine(12345)
		noise := e.Rand("some/unrelated/stream")
		_ = noise.Uint64()
		for _, n := range []string{"incast/picks", "rdma/dests/0", "switch/tor3/ecn"} {
			_ = e.Rand("more/noise/" + n).Float64()
			if got := draw(e.Rand(n)); got != ref[n] {
				t.Fatalf("stream %q drew %v under sparse request order, want %v", n, got, ref[n])
			}
		}
	}

	// Re-requesting a name yields a fresh stream with the same sequence
	// (the property shard replicas rely on to stay in lockstep).
	{
		e := NewEngine(12345)
		a := e.Rand("incast/queries")
		_ = draw(a)
		b := e.Rand("incast/queries")
		if got := draw(b); got != ref["incast/queries"] {
			t.Fatalf("re-requested stream diverged: %v != %v", got, ref["incast/queries"])
		}
	}
}
