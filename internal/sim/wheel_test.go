package sim

import (
	"math/rand"
	"testing"
)

// wheelTestGranularities covers the interesting tick widths: 1 ps (every
// event gets its own tick), a fabric-sized tick, and a tick so coarse that
// whole runs share one bucket (the wheel degenerates to the heap).
var wheelTestGranularities = []Duration{1, 8 * Nanosecond, DefaultWheelGranularity, Millisecond}

// record is one observed dispatch for order comparison.
type record struct {
	id int
	at Time
}

// driveRandomWorkload runs an identical randomized schedule/cancel/rearm
// mix on the given engine and returns the exact dispatch order. The mix
// deliberately spans every wheel level: sub-tick delays, level-0/1/2 block
// distances, and far-overflow timers beyond the 2^24-tick block, plus keyed
// arrivals, zero-delay storms, and horizon-bounded Run calls.
func driveRandomWorkload(e *Engine, seed int64) []record {
	rng := rand.New(rand.NewSource(seed))
	var got []record
	id := 0
	var refs []EventRef

	schedule := func(depth int) {}
	schedule = func(depth int) {
		id++
		myID := id
		var delay Duration
		switch rng.Intn(6) {
		case 0:
			delay = 0 // same-instant tie-breaks
		case 1:
			delay = Duration(rng.Int63n(int64(100 * Nanosecond)))
		case 2:
			delay = Duration(rng.Int63n(int64(10 * Microsecond)))
		case 3:
			delay = Duration(rng.Int63n(int64(5 * Millisecond)))
		case 4:
			delay = Duration(rng.Int63n(int64(800 * Millisecond)))
		default:
			delay = Duration(rng.Int63n(int64(30 * Second))) // far overflow
		}
		if rng.Intn(4) == 0 {
			key := ArrivalKeyBit | uint64(myID)<<20 | uint64(rng.Intn(1000))
			e.ScheduleArrivalAt(e.Now()+delay, func(arg any) {
				got = append(got, record{arg.(int), e.Now()})
				if depth < 3 && rng.Intn(3) > 0 {
					schedule(depth + 1)
				}
			}, myID, key)
			return
		}
		ref := e.Schedule(delay, func() {
			got = append(got, record{myID, e.Now()})
			if depth < 3 && rng.Intn(3) > 0 {
				schedule(depth + 1)
			}
		})
		if rng.Intn(5) == 0 {
			refs = append(refs, ref)
		}
	}

	for i := 0; i < 400; i++ {
		schedule(0)
	}
	// Cancel a random subset before anything runs.
	for _, ref := range refs {
		if rng.Intn(2) == 0 {
			r := ref
			r.Cancel()
		}
	}
	refs = refs[:0]

	// Interleave horizon-bounded runs, peeks, and more scheduling.
	horizon := Time(0)
	for round := 0; round < 12; round++ {
		horizon += Duration(rng.Int63n(int64(2 * Second)))
		e.Run(horizon)
		if at, ok := e.NextEventTime(); ok && at < horizon {
			panic("NextEventTime returned a past event")
		}
		for i := 0; i < 40; i++ {
			schedule(0)
		}
		for _, ref := range refs {
			if rng.Intn(2) == 0 {
				r := ref
				r.Cancel()
			}
		}
		refs = refs[:0]
	}
	e.RunAll()
	return got
}

// TestWheelByteIdenticalToHeap is the scheduler's core contract: for the
// same workload, the wheel backend dispatches exactly the same events at
// exactly the same times in exactly the same order as the heap, at every
// granularity.
func TestWheelByteIdenticalToHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := driveRandomWorkload(NewEngine(99), seed)
		for _, g := range wheelTestGranularities {
			e := NewEngineWheel(99, g)
			got := driveRandomWorkload(e, seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d gran %v: dispatched %d events, heap dispatched %d",
					seed, g, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d gran %v: dispatch %d = %+v, heap dispatched %+v",
						seed, g, i, got[i], want[i])
				}
			}
			checkFreeListClean(t, e, "after wheel workload")
			if n := e.Pending(); n != 0 {
				t.Fatalf("seed %d gran %v: %d events pending after RunAll", seed, g, n)
			}
		}
	}
}

// TestWheelCountersMatchHeap checks the observable accounting (events
// fired, final clock) agrees between backends.
func TestWheelCountersMatchHeap(t *testing.T) {
	h := NewEngine(3)
	driveRandomWorkload(h, 11)
	w := NewEngineWheel(3, 0)
	driveRandomWorkload(w, 11)
	if h.Events() != w.Events() {
		t.Fatalf("fired: heap %d, wheel %d", h.Events(), w.Events())
	}
	if h.Now() != w.Now() {
		t.Fatalf("final clock: heap %v, wheel %v", h.Now(), w.Now())
	}
}

// TestWheelNextEventTime exercises the conservative-time peek across bucket
// boundaries: the answer must match the heap's even when the next live
// event is parked levels away, and peeking must not disturb dispatch.
func TestWheelNextEventTime(t *testing.T) {
	e := NewEngineWheel(5, 8*Nanosecond)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported a next event")
	}
	var fired []Time
	note := func() { fired = append(fired, e.Now()) }
	far := e.Schedule(20*Second, note)
	e.Schedule(3*Millisecond, note)
	near := e.Schedule(10*Microsecond, note)
	if at, ok := e.NextEventTime(); !ok || at != Time(10*Microsecond) {
		t.Fatalf("peek = %v,%v, want 10µs", at, ok)
	}
	near.Cancel()
	if at, ok := e.NextEventTime(); !ok || at != Time(3*Millisecond) {
		t.Fatalf("peek after cancel = %v,%v, want 3ms", at, ok)
	}
	far.Cancel()
	e.RunAll()
	if len(fired) != 1 || fired[0] != Time(3*Millisecond) {
		t.Fatalf("fired = %v, want exactly [3ms]", fired)
	}
	if at, ok := e.NextEventTime(); ok {
		t.Fatalf("drained engine reported next event at %v", at)
	}
}

// TestWheelFarRebase plants events many level-2 blocks apart so every
// dispatch crosses the far-overflow rebase path, and checks order.
func TestWheelFarRebase(t *testing.T) {
	e := NewEngineWheel(1, 1) // 1 ps ticks: 2^24 ticks is only ~17 µs
	var got []Time
	// Schedule in reverse so the far list is maximally unsorted.
	for i := 20; i >= 1; i-- {
		e.Schedule(Duration(i)*100*Microsecond, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	if len(got) != 20 {
		t.Fatalf("fired %d events, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	checkFreeListClean(t, e, "after far rebase")
}

// TestWheelCompactionSweepsBuckets cancels far-future timers much faster
// than they would pop (the DCQCN rearm pattern) and checks compaction keeps
// Pending() bounded by the live count, with clean recycled records.
func TestWheelCompactionSweepsBuckets(t *testing.T) {
	e := NewEngineWheel(17, 0)
	live := 0
	e.Schedule(0, func() { live++ })
	for i := 0; i < 100_000; i++ {
		ref := e.ScheduleArg(Second+Duration(i)*Microsecond, func(any) { live++ }, nil)
		ref.Cancel()
	}
	if n := e.Pending(); n > 2*compactThreshold+8 {
		t.Fatalf("Pending() = %d after rearm storm, want compaction to bound it", n)
	}
	checkFreeListClean(t, e, "after bucket sweep")
	e.RunAll()
	if live != 1 {
		t.Fatalf("fired %d live events, want 1", live)
	}
}

// TestWheelRunHorizon checks Run(until) parks exactly at the horizon with
// events still in wheel buckets, and resumes across calls.
func TestWheelRunHorizon(t *testing.T) {
	e := NewEngineWheel(2, 0)
	var fired []Time
	for _, d := range []Duration{Microsecond, Millisecond, Second} {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	if now := e.Run(Time(50 * Microsecond)); now != Time(50*Microsecond) {
		t.Fatalf("Run returned %v, want horizon", now)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d events before 50µs, want 1", len(fired))
	}
	e.RunAll()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after RunAll", e.Pending())
	}
}

// TestWheelGranularityReporting pins the constructor's rounding contract.
func TestWheelGranularityReporting(t *testing.T) {
	if g := NewEngine(1).WheelGranularity(); g != 0 {
		t.Fatalf("heap engine WheelGranularity = %v, want 0", g)
	}
	if g := NewEngineWheel(1, 0).WheelGranularity(); g != DefaultWheelGranularity {
		t.Fatalf("default granularity = %v, want %v", g, DefaultWheelGranularity)
	}
	if g := NewEngineWheel(1, 1000).WheelGranularity(); g != 512 {
		t.Fatalf("granularity 1000 rounded to %v, want 512 (power of two)", g)
	}
	if g := NewEngineWheel(1, Microsecond/64).WheelGranularity(); g != 8192 {
		t.Fatalf("fabric-sized granularity rounded to %v, want 8192 ps", g)
	}
	if g := WheelGranularityFor(Microsecond); g != Microsecond/64 {
		t.Fatalf("WheelGranularityFor(1µs) = %v, want %v", g, Microsecond/64)
	}
	if g := WheelGranularityFor(0); g != DefaultWheelGranularity {
		t.Fatalf("WheelGranularityFor(0) = %v, want default", g)
	}
}

// TestWheelBlockRolloverOrder pins the covering-slot merge: flushing the
// last tick of a block moves floor into the next block, where earlier
// events may already be filed one level up (or in far). A fresh insert for
// the new block then lands straight in level 0 — and must NOT be
// dispatched before the older, earlier event still parked higher. One case
// per boundary: level-0 block (l1 covering slot), level-1 block (l2
// covering slot), and level-2 block (far filter).
func TestWheelBlockRolloverOrder(t *testing.T) {
	cases := []struct {
		name                string
		tickB, tickA, tickC uint64 // B fires first and schedules C; A must beat C
	}{
		{"l1-covering", 0xFF, 0x105, 0x108},
		{"l2-covering", 0xFFFF, 0x10500, 0x10800},
		{"far-filter", 0xFFFFFF, 0x1000500, 0x1000800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(e *Engine) []Time {
				var got []Time
				note := func() { got = append(got, e.Now()) }
				// B sits at the last tick of its block; firing it rolls
				// floor into A's block while A is still filed above.
				e.ScheduleAt(Time(tc.tickB), func() {
					note()
					e.ScheduleAt(Time(tc.tickC), note)
				})
				e.ScheduleAt(Time(tc.tickA), note)
				e.RunAll()
				return got
			}
			want := run(NewEngine(7))
			got := run(NewEngineWheel(7, 1)) // 1 ps ticks: tick == timestamp
			if len(got) != 3 || len(want) != 3 {
				t.Fatalf("fired wheel=%v heap=%v, want 3 events each", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dispatch %d: wheel fired at %v, heap at %v (wheel order %v)",
						i, got[i], want[i], got)
				}
			}
			if got[1] != Time(tc.tickA) {
				t.Fatalf("second dispatch at %v, want the parked event at %v", got[1], Time(tc.tickA))
			}
		})
	}
}
