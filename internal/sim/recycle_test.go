package sim

import "testing"

// checkFreeListClean asserts the pooled-event recycle invariant: every record
// on the engine's free list must carry no callback and no argument, so a
// recycled event can never keep a stale reference — typically a pooled
// packet — reachable (the satellite bugfix this file regresses).
func checkFreeListClean(t *testing.T, e *Engine, when string) {
	t.Helper()
	for i, ev := range e.free {
		if ev.fn != nil || ev.afn != nil || ev.arg != nil {
			t.Fatalf("%s: free list record %d carries stale state: fn=%v afn=%v arg=%v",
				when, i, ev.fn != nil, ev.afn != nil, ev.arg)
		}
	}
}

// TestScheduleArgDeliversInOrder pins the closure-free scheduling contract:
// ScheduleArg events interleave with plain Schedule events in strict
// (time, sequence) order and each receives exactly the argument it was
// scheduled with.
func TestScheduleArgDeliversInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	push := func(arg any) { got = append(got, arg.(int)) }
	e.ScheduleArg(20, push, 2)
	e.Schedule(10, func() { got = append(got, 1) })
	e.ScheduleArg(10, push, 10) // same instant as the closure above: FIFO by seq
	e.ScheduleArg(30, push, 3)
	e.RunAll()
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestRecycledEventsDropArgsOnDispatch: after an arg-carrying event fires,
// its record goes to the free list with fn/afn/arg cleared — BEFORE the body
// runs, so a callback that recycles its packet into a pool and immediately
// schedules it onto a new event cannot alias the old record.
func TestRecycledEventsDropArgsOnDispatch(t *testing.T) {
	e := NewEngine(1)
	type payload struct{ n int }
	fired := 0
	var fn ArgCallback
	fn = func(arg any) {
		fired++
		// Mid-callback, the record that carried us must already be clean on
		// the free list (cleared before dispatch ran the body).
		checkFreeListClean(t, e, "mid-callback")
		if fired < 3 {
			e.ScheduleArg(5, fn, &payload{n: fired})
		}
	}
	e.ScheduleArg(1, fn, &payload{n: 0})
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	checkFreeListClean(t, e, "after run")
}

// TestCancelledArgEventsDropArgs: Cancel must clear the stored argument
// immediately (not at compaction or dispatch), so a cancelled retransmit
// timer cannot pin a recycled packet.
func TestCancelledArgEventsDropArgs(t *testing.T) {
	e := NewEngine(1)
	arg := &struct{ x int }{x: 7}
	ref := e.ScheduleArg(10, func(any) { t.Fatal("cancelled event fired") }, arg)
	if !ref.Cancel() {
		t.Fatal("Cancel returned false for a live event")
	}
	for _, ev := range e.queue {
		if ev.arg != nil || ev.fn != nil || ev.afn != nil {
			t.Fatal("cancelled event still holds its callback or argument")
		}
	}
	e.RunAll()
	checkFreeListClean(t, e, "after draining cancelled event")
}

// TestCompactionRecyclesCleanRecords drives enough cancellations to trigger
// heap compaction and asserts the records compaction recycles reach the free
// list clean, with generations bumped so stale EventRefs cannot cancel a new
// incarnation.
func TestCompactionRecyclesCleanRecords(t *testing.T) {
	e := NewEngine(1)
	// Keep one live far-future event so the queue never empties.
	e.Schedule(1_000_000, func() {})
	var refs []EventRef
	for i := 0; i < 3*compactThreshold; i++ {
		refs = append(refs, e.ScheduleArg(500_000, func(any) {
			t.Fatal("cancelled event fired")
		}, &struct{ i int }{i}))
	}
	for _, r := range refs {
		if !r.Cancel() {
			t.Fatal("Cancel failed")
		}
	}
	if len(e.free) == 0 {
		t.Fatal("compaction never recycled any records")
	}
	checkFreeListClean(t, e, "after compaction")
	// A stale ref into a recycled record must be a no-op even after the
	// record is reissued.
	e.ScheduleArg(600_000, func(any) {}, nil)
	if refs[0].Cancel() {
		t.Fatal("stale EventRef cancelled a recycled event")
	}
	e.RunAll()
	checkFreeListClean(t, e, "after full drain")
}

// TestAllocReissuesRecycledRecordsZeroed: the Get side of the event pool — a
// record popped off the free list starts from a clean slate even if a bug
// elsewhere left state on it.
func TestAllocReissuesRecycledRecordsZeroed(t *testing.T) {
	e := NewEngine(1)
	e.ScheduleArg(1, func(any) {}, "payload")
	e.RunAll()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d records, want 1", len(e.free))
	}
	// Simulate a corrupted recycle point leaving a stale arg behind.
	e.free[0].arg = "stale"
	ev := e.alloc(e.Now() + 1)
	if ev.arg != nil || ev.fn != nil || ev.afn != nil {
		t.Fatal("alloc reissued a record without re-clearing it")
	}
	// Hand the record back via a normal schedule/dispatch cycle.
	ev.fn = func() {}
	e.push(ev)
	e.RunAll()
	checkFreeListClean(t, e, "after defensive realloc")
}
