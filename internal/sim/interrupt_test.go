package sim

import "testing"

// TestInterruptStopsRunEarly: a poll returning true abandons the loop at
// the next poll boundary, leaving later events pending.
func TestInterruptStopsRunEarly(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 100; i++ {
		e.Schedule(Duration(i)*Microsecond, func() { fired++ })
	}
	polls := 0
	e.SetInterrupt(10, func() bool {
		polls++
		return polls >= 3 // fire on the 3rd poll = after 30 events
	})
	e.RunAll()
	if fired != 30 {
		t.Errorf("fired %d events before interrupt, want 30", fired)
	}
	if polls != 3 {
		t.Errorf("polled %d times, want 3", polls)
	}
	// The engine is stopped, not broken: disarm and resume, and the
	// remaining 70 events execute normally.
	e.SetInterrupt(0, nil)
	e.RunAll()
	if fired != 100 {
		t.Errorf("resume after interrupt fired %d total events, want 100", fired)
	}
}

// TestInterruptStopsBoundedRun: same contract for Run(until).
func TestInterruptStopsBoundedRun(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 50; i++ {
		e.Schedule(Duration(i)*Microsecond, func() { fired++ })
	}
	e.SetInterrupt(1, func() bool { return fired >= 7 })
	e.Run(Time(100 * Microsecond))
	if fired != 7 {
		t.Errorf("fired %d events before interrupt, want 7", fired)
	}
}

// TestInterruptObserverFree: an armed poll that never fires must not change
// what executes, when, or the clock — it is a pure read of the loop.
func TestInterruptObserverFree(t *testing.T) {
	run := func(arm bool) (uint64, Time) {
		e := NewEngine(7)
		if arm {
			e.SetInterrupt(4, func() bool { return false })
		}
		for i := 1; i <= 20; i++ {
			d := Duration(e.Rand("d").Intn(100)+1) * Microsecond
			e.Schedule(d, func() {
				if e.Rand("chain").Float64() < 0.5 {
					e.Schedule(Microsecond, func() {})
				}
			})
		}
		e.RunAll()
		return e.Events(), e.Now()
	}
	offEvents, offNow := run(false)
	onEvents, onNow := run(true)
	if offEvents != onEvents || offNow != onNow {
		t.Errorf("armed-but-idle interrupt perturbed the run: events %d→%d, now %v→%v",
			offEvents, onEvents, offNow, onNow)
	}
}

// TestInterruptDisarm: nil fn disarms; zero period with a non-nil fn is a
// programming error.
func TestInterruptDisarm(t *testing.T) {
	e := NewEngine(1)
	e.SetInterrupt(1, func() bool { return true })
	e.SetInterrupt(0, nil) // disarm — zero period legal here
	fired := 0
	e.Schedule(Microsecond, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Errorf("disarmed interrupt still stopped the run (fired=%d)", fired)
	}

	defer func() {
		if recover() == nil {
			t.Error("SetInterrupt(0, fn) did not panic")
		}
	}()
	e.SetInterrupt(0, func() bool { return false })
}
