package sim

import "math/bits"

// This file implements the hierarchical timer-wheel backend for Engine
// (selected with NewEngineWheel; NewEngine keeps the plain 4-ary heap).
//
// The wheel is an overflow structure in front of the exact heap, never a
// replacement for it: every event is dispatched FROM the heap, in the heap's
// total (at, seq | arrival-key) order. Time is quantised into ticks of
// 2^shift picoseconds, and the engine maintains one invariant:
//
//	events with tick(at) <  floor  live in the heap (exactly ordered),
//	events with tick(at) >= floor  live in wheel buckets (unsorted).
//
// Ticks are strict buckets of time, so every heap event's timestamp is
// strictly below every wheel event's timestamp — the heap head is always
// the global minimum. When the heap runs dry, advance() flushes the next
// occupied bucket (one tick's worth of events) into the heap in one go and
// moves floor past it; because a bucket is emptied *entirely* before any of
// its events can run, same-instant ties are re-ordered by the heap exactly
// as the pure-heap engine would have, and results stay byte-identical for
// every experiment, fault plan, and shard count.
//
// Why it is fast: the heap only ever holds the current tick or two (a
// handful of events), so push/pop touch a cache-resident micro-heap instead
// of sifting through hundreds of thousands of pointers. Inserts are O(1)
// appends into a level picked by block equality against floor:
//
//	level 0: same 256-tick block as floor, one slot per tick
//	level 1: same 65536-tick block, one slot per 256 ticks
//	level 2: same 2^24-tick block, one slot per 65536 ticks
//	far:     beyond floor's 2^24-tick block (unsorted, lazily rebased)
//
// Block equality (rather than distance) sidesteps slot wraparound entirely:
// a slot can only ever hold ticks from a single block, so cascading a
// level-k slot moves floor to the start of that block and re-places its
// events one level down without ambiguity.

const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// DefaultWheelGranularity is the tick width used when NewEngineWheel is
// given a non-positive granularity: ~16 ns (2^14 ps, already a power of
// two) spreads microsecond-scale fabric events over ~64 ticks per
// propagation delay, keeping the near-heap tiny.
const DefaultWheelGranularity = Duration(1) << 14 * Picosecond

// WheelGranularityFor sizes the wheel tick from a fabric's minimum
// propagation delay: 1/64th of the shortest hop (rounded down to a power of
// two by the engine) spreads the in-flight events of even a single hop over
// many buckets. A non-positive delay falls back to DefaultWheelGranularity.
func WheelGranularityFor(minPropDelay Duration) Duration {
	if minPropDelay <= 0 {
		return DefaultWheelGranularity
	}
	g := minPropDelay / 64
	if g < 1 {
		g = 1
	}
	return g
}

// wheelEntry pairs a bucketed event with its precomputed tick so cascades
// and rebases route entries without touching the (cache-cold) event struct.
// The event rides as its registry index (Engine.all), not a pointer: bucket
// arrays are then pointer-free, so appends skip the write barrier and the
// GC never scans the (potentially many-megabyte) wheel — the single biggest
// win at 1M pending events. Pooled event records live forever in the
// registry, so an index can never dangle.
type wheelEntry struct {
	t   uint64
	idx uint32
}

type wheel struct {
	shift uint   // tick width = 2^shift picoseconds
	floor uint64 // first tick that may still live in a bucket
	count int    // events resident in buckets (live + cancelled)

	l0, l1, l2 [wheelSlots][]wheelEntry
	b0, b1, b2 [wheelWords]uint64 // slot-occupancy bitmaps
	far        []wheelEntry
	// farBlock is the level-2 block far has been filtered against: far
	// holds no entries inside it. advance refilters when floor's block
	// moves (an l0 flush of a block's last tick can cross any boundary).
	farBlock uint64
}

func newWheel(granularity Duration) *wheel {
	if granularity <= 0 {
		granularity = DefaultWheelGranularity
	}
	// Round down to a power of two so tick extraction is a shift.
	return &wheel{shift: uint(bits.Len64(uint64(granularity)) - 1)}
}

// Granularity returns the wheel's tick width in simulated time.
func (w *wheel) granularity() Duration { return Duration(1) << w.shift }

func (w *wheel) tick(at Time) uint64 { return uint64(at) >> w.shift }

// insert routes a freshly scheduled event: past-or-current ticks go to the
// exact heap, future ticks into the bucket picked by block equality.
func (w *wheel) insert(e *Engine, ev *event) {
	t := w.tick(ev.at)
	if t < w.floor {
		e.push(ev)
		return
	}
	w.place(wheelEntry{t, ev.idx})
	w.count++
}

// place files an event with tick >= floor into its bucket. Callers
// redistributing a cascaded slot rely on place never appending to w.far for
// events inside floor's level-2 block — true by construction, since the far
// branch is exactly the "outside the level-2 block" case.
func (w *wheel) place(en wheelEntry) {
	t := en.t
	switch {
	case t>>wheelBits == w.floor>>wheelBits:
		i := t & wheelMask
		w.l0[i] = append(w.l0[i], en)
		w.b0[i>>6] |= 1 << (i & 63)
	case t>>(2*wheelBits) == w.floor>>(2*wheelBits):
		i := (t >> wheelBits) & wheelMask
		w.l1[i] = append(w.l1[i], en)
		w.b1[i>>6] |= 1 << (i & 63)
	case t>>(3*wheelBits) == w.floor>>(3*wheelBits):
		i := (t >> (2 * wheelBits)) & wheelMask
		w.l2[i] = append(w.l2[i], en)
		w.b2[i>>6] |= 1 << (i & 63)
	default:
		w.far = append(w.far, en)
	}
}

// scanBits returns the lowest set bit index across the bitmap words.
func scanBits(b *[wheelWords]uint64) (uint64, bool) {
	for wi, word := range b {
		if word != 0 {
			return uint64(wi*64 + bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// advance is called when the heap is empty: it flushes buckets (cascading
// higher levels down as needed) until at least one live event lands in the
// heap, and reports whether it did. Cancelled events discovered on the way
// are recycled without ever touching the heap.
func (w *wheel) advance(e *Engine) bool {
	for w.count > 0 {
		// An l0 flush of a block's last tick advances floor across a block
		// boundary without cascading: events filed for the new block at a
		// higher level (or in far) would then lose races against newer,
		// later inserts that go straight to level 0. Merge every slot that
		// covers floor's current blocks down first, so the l0 scan below
		// always sees the true minimum.
		if w.syncCovering(e) {
			return true
		}
		// Level 0: one tick per slot — flush it straight into the heap.
		if i, ok := scanBits(&w.b0); ok {
			slot := w.l0[i]
			w.l0[i] = slot[:0]
			w.b0[i>>6] &^= 1 << (i & 63)
			w.count -= len(slot)
			tick := (w.floor>>wheelBits)<<wheelBits | i
			w.floor = tick + 1
			pushed := false
			for _, en := range slot {
				ev := e.all[en.idx]
				if ev.live() {
					e.push(ev)
					pushed = true
				} else {
					e.recycleDead(ev)
				}
			}
			if pushed {
				return true
			}
			continue
		}
		// Level 1: slot covers one level-0 block; move floor to its start
		// and re-place its events one level down.
		if i, ok := scanBits(&w.b1); ok {
			w.cascade(e, &w.l1[i], &w.b1, i,
				((w.floor>>(2*wheelBits))<<wheelBits|i)<<wheelBits)
			continue
		}
		// Level 2: slot covers one level-1 block.
		if i, ok := scanBits(&w.b2); ok {
			w.cascade(e, &w.l2[i], &w.b2, i,
				((w.floor>>(3*wheelBits))<<wheelBits|i)<<(2*wheelBits))
			continue
		}
		// Far overflow: rebase floor to the earliest far event's level-2
		// block, then re-place everything that entered the block. Events in
		// later blocks stay put, touched at most once per block they span.
		if !w.rebase(e) {
			return false
		}
	}
	return false
}

// syncCovering merges down the higher-level slots (and far entries) that
// cover floor's current blocks: the level-1 slot for floor's level-0 block,
// the level-2 slot for floor's level-1 block, and far entries inside
// floor's level-2 block. floor does not move — these events were filed
// before floor reached their block and now belong at a lower level (or, as
// a safety that cannot arise by construction, in the heap when their tick
// already dropped below floor). Reports whether a live event reached the
// heap, in which case the caller must return it before flushing anything.
func (w *wheel) syncCovering(e *Engine) bool {
	pushed := false
	if fb := w.floor >> (3 * wheelBits); fb != w.farBlock {
		w.farBlock = fb
		if len(w.far) > 0 {
			keep := w.far[:0]
			for _, en := range w.far {
				if en.t>>(3*wheelBits) == fb {
					pushed = w.mergeDown(e, en) || pushed
				} else {
					keep = append(keep, en)
				}
			}
			w.far = keep
		}
	}
	if i := (w.floor >> (2 * wheelBits)) & wheelMask; w.b2[i>>6]&(1<<(i&63)) != 0 {
		s := w.l2[i]
		w.l2[i] = s[:0]
		w.b2[i>>6] &^= 1 << (i & 63)
		for _, en := range s {
			pushed = w.mergeDown(e, en) || pushed
		}
	}
	if i := (w.floor >> wheelBits) & wheelMask; w.b1[i>>6]&(1<<(i&63)) != 0 {
		s := w.l1[i]
		w.l1[i] = s[:0]
		w.b1[i>>6] &^= 1 << (i & 63)
		for _, en := range s {
			pushed = w.mergeDown(e, en) || pushed
		}
	}
	return pushed
}

// mergeDown re-files one covering-slot entry: back into the bucket its tick
// now selects, or into the heap when floor already passed it. Reports
// whether a live event was pushed to the heap.
func (w *wheel) mergeDown(e *Engine, en wheelEntry) bool {
	if en.t >= w.floor {
		w.place(en)
		return false
	}
	w.count--
	ev := e.all[en.idx]
	if ev.live() {
		e.push(ev)
		return true
	}
	e.recycleDead(ev)
	return false
}

// cascade empties one higher-level slot: floor jumps to blockStart (every
// resident tick is >= blockStart, so the heap/bucket invariant holds), and
// the slot's events re-place into lower levels.
func (w *wheel) cascade(e *Engine, slot *[]wheelEntry, bitmap *[wheelWords]uint64, i, blockStart uint64) {
	s := *slot
	*slot = s[:0]
	bitmap[i>>6] &^= 1 << (i & 63)
	w.floor = blockStart
	for _, en := range s {
		w.place(en)
	}
}

// rebase advances floor to the earliest far event's level-2 block and
// re-places the events that fall inside it. Reports false when there is
// nothing in far (the wheel is truly empty at this point).
func (w *wheel) rebase(e *Engine) bool {
	if len(w.far) == 0 {
		return false
	}
	min := w.far[0].t
	for _, en := range w.far[1:] {
		if en.t < min {
			min = en.t
		}
	}
	if b := min >> (3 * wheelBits); b > w.floor>>(3*wheelBits) {
		w.floor = b << (3 * wheelBits)
	}
	w.farBlock = w.floor >> (3 * wheelBits)
	keep := w.far[:0]
	for _, en := range w.far {
		if en.t>>(3*wheelBits) == w.farBlock {
			w.place(en) // cannot re-append to far: same level-2 block
			continue
		}
		keep = append(keep, en)
	}
	w.far = keep
	return true
}

// sweep drops cancelled events from every bucket (the wheel half of
// Engine.compact), so rearm-heavy users that cancel far-future timers keep
// Pending() proportional to the live count. The engine resets its
// cancelled counter after compaction, so sweep recycles without touching it.
func (w *wheel) sweep(e *Engine) {
	sweepLevel := func(slots *[wheelSlots][]wheelEntry, bitmap *[wheelWords]uint64) {
		for i := range slots {
			s := slots[i]
			if len(s) == 0 {
				continue
			}
			keep := s[:0]
			for _, en := range s {
				ev := e.all[en.idx]
				if ev.live() {
					keep = append(keep, en)
					continue
				}
				w.count--
				ev.clear()
				ev.gen++
				e.free = append(e.free, ev)
			}
			slots[i] = keep
			if len(keep) == 0 {
				bitmap[i>>6] &^= 1 << (i & 63)
			}
		}
	}
	sweepLevel(&w.l0, &w.b0)
	sweepLevel(&w.l1, &w.b1)
	sweepLevel(&w.l2, &w.b2)
	keep := w.far[:0]
	for _, en := range w.far {
		ev := e.all[en.idx]
		if ev.live() {
			keep = append(keep, en)
			continue
		}
		w.count--
		ev.clear()
		ev.gen++
		e.free = append(e.free, ev)
	}
	w.far = keep
}
