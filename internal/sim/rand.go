package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent, reproducible random streams from one master
// seed. Model components ask for streams by name so that adding a new
// consumer never perturbs the draws seen by existing ones.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source { return &Source{seed: seed} }

// Stream returns the deterministic random stream for name. Calling Stream
// twice with the same name returns two streams that produce identical
// sequences.
func (s *Source) Stream(name string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	derived := int64(h.Sum64()) ^ (s.seed * 0x4F1BBCDCBFA53E0B)
	return &Rand{rng: rand.New(rand.NewSource(derived))}
}

// Rand is a deterministic random stream with helpers for the distributions
// the simulator needs. It is not safe for concurrent use, matching the
// single-threaded engine.
type Rand struct {
	rng *rand.Rand
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 { return r.rng.Int63n(n) }

// Uint64 returns a uniform 64-bit draw.
func (r *Rand) Uint64() uint64 { return r.rng.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// ExpDuration returns an exponentially distributed duration with the given
// mean, suitable for Poisson inter-arrival gaps. The result is at least 1 ps
// so that successive arrivals never collapse onto the same instant ordering
// accident.
func (r *Rand) ExpDuration(mean Duration) Duration {
	if mean <= 0 {
		return 1
	}
	d := Duration(math.Round(r.rng.ExpFloat64() * float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}
