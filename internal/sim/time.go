// Package sim provides the deterministic discrete-event simulation engine
// that underpins the L2BM reproduction: a virtual picosecond clock, an event
// queue with FIFO tie-breaking, cancellable timers and seeded random-number
// streams.
//
// The engine is single-threaded by design: all model code runs inside event
// callbacks on the goroutine that called Engine.Run, so model state needs no
// locking and every run with the same seed is bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant measured in integer picoseconds since the
// start of the simulation.
//
// Picoseconds keep link arithmetic exact: one byte takes 80 ps on a 100 Gbps
// link and 320 ps on a 25 Gbps link, both integral. An int64 of picoseconds
// spans about 106 days, far beyond any simulation here.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Handy duration units, mirroring package time but in simulated picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Std converts t to a time.Duration (nanosecond resolution, truncating).
func (t Time) Std() time.Duration { return time.Duration(int64(t) / int64(Nanosecond)) }

// String formats the time with an adaptive unit, e.g. "12.8us" or "3.2ms".
func (t Time) String() string {
	switch abs := t; {
	case abs < 0:
		return "-" + (-t).String()
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case abs < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	case abs < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}

// FromSeconds converts floating-point seconds to simulated Time, rounding to
// the nearest picosecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// TxTime returns the serialization delay of size bytes on a link running at
// rateBps bits per second.
//
// The computation goes through float64, which is exact for every value that
// fits in 53 bits — comfortably covering multi-megabyte frames on multi-Tbps
// links.
func TxTime(sizeBytes int, rateBps int64) Duration {
	if rateBps <= 0 {
		panic("sim: TxTime requires a positive rate")
	}
	return Duration(math.Round(float64(sizeBytes) * 8 / float64(rateBps) * float64(Second)))
}

// BytesOver returns how many bytes a link at rateBps serializes in d,
// rounded to the nearest byte. It is the inverse of TxTime.
func BytesOver(d Duration, rateBps int64) int64 {
	if d <= 0 {
		return 0
	}
	return int64(math.Round(float64(d) / float64(Second) * float64(rateBps) / 8))
}
