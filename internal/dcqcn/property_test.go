package dcqcn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Property: under any interleaving of CNPs and timer expirations, the rate
// stays within [MinRate, LineRate], the target within [rate, LineRate], and
// α within [0, 1].
func TestSenderRateInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		env := &fakeEnv{eng: eng}
		cfg := DefaultConfig(25e9)
		s := NewSender(env, cfg, rdmaFlow(1<<30), nil)
		s.Start()

		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0:
				s.HandleCNP()
			case 1:
				// Let some simulated time pass (timers fire).
				eng.Run(eng.Now() + sim.Duration(rng.Intn(1000))*sim.Microsecond)
			default:
				// CNP bursts.
				for j := 0; j < rng.Intn(5); j++ {
					s.HandleCNP()
				}
			}
			if s.rc < float64(cfg.MinRate) || s.rc > float64(cfg.LineRate) {
				return false
			}
			if s.rt < s.rc || s.rt > float64(cfg.LineRate) {
				return false
			}
			if s.alpha < 0 || s.alpha > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: total payload handed to the NIC equals the flow size exactly,
// for any flow size and rate trajectory.
func TestSenderEmitsExactFlowSize(t *testing.T) {
	f := func(rawSize uint32, cnpEvery uint8) bool {
		size := int64(rawSize%500_000) + 1
		eng := sim.NewEngine(int64(rawSize))
		env := &fakeEnv{eng: eng}
		s := NewSender(env, DefaultConfig(25e9), rdmaFlow(size), nil)

		// Inject CNPs periodically via a timer to vary the rate.
		if cnpEvery > 0 {
			every := sim.Duration(cnpEvery) * sim.Microsecond
			var tick func()
			tick = func() {
				if s.Done() {
					return
				}
				s.HandleCNP()
				eng.Schedule(every, tick)
			}
			eng.Schedule(every, tick)
		}

		s.Start()
		eng.Run(10 * sim.Second)
		if !s.Done() {
			return false
		}
		var total int64
		for _, p := range env.sent {
			total += int64(p.PayloadLen)
		}
		return total == size && env.sent[len(env.sent)-1].FlowFin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the receiver emits at most ceil(duration/CNPInterval)+1 CNPs no
// matter how many marked packets arrive.
func TestReceiverCNPBudget(t *testing.T) {
	f := func(seed int64, packets uint8) bool {
		eng := sim.NewEngine(seed)
		env := &fakeEnv{eng: eng}
		cfg := DefaultConfig(25e9)
		r := NewReceiver(env, cfg, 7, 1, 0, nil)

		n := int(packets)%200 + 1
		gap := 5 * sim.Microsecond // 10 packets per CNP interval
		for i := 0; i < n; i++ {
			p := pkt.NewData(7, 0, 1, pkt.PrioLossless, pkt.ClassLossless, int64(i)*1000, 1000)
			p.CE = true
			eng.Schedule(sim.Duration(i)*gap, func() { r.HandleData(p) })
		}
		eng.RunAll()

		span := sim.Duration(n-1) * gap
		budget := int(span/cfg.CNPInterval) + 1
		return len(env.sent) <= budget && len(env.sent) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
