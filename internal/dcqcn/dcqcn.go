// Package dcqcn implements the DCQCN congestion control (Zhu et al.,
// SIGCOMM 2015) used for the paper's lossless RDMA traffic: a rate-based
// reaction point (sender) that cuts its rate on Congestion Notification
// Packets and recovers through fast-recovery, additive-increase and
// hyper-increase stages, and a notification point (receiver) that emits at
// most one CNP per flow per interval when it sees CE-marked packets.
//
// Reliability: on a healthy fabric the network is lossless under PFC, so by
// default the endpoints track sequence continuity only to assert the
// zero-loss invariant. When Config.GoBackN is set (fault-injection runs), the
// endpoints instead implement RoCE-style go-back-N recovery: the receiver is
// strictly in-order, NACKs out-of-sequence arrivals (rate-limited) and emits
// cumulative ACKs; the sender keeps an unacknowledged mark, rewinds on NACK
// or retransmission timeout with exponential backoff, and completes only
// when every byte has been acknowledged.
package dcqcn

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// Config parameterizes DCQCN endpoints. Defaults follow the DCQCN paper and
// common ns-3 implementations.
type Config struct {
	// MSS is the payload bytes per packet.
	MSS int
	// LineRate is the NIC line rate (bits/s), the initial and maximum rate.
	LineRate int64
	// MinRate floors the current rate (bits/s).
	MinRate int64
	// G is the EWMA gain for α.
	G float64
	// AlphaTimer is the α-decay period when no CNP arrives (55 µs).
	AlphaTimer sim.Duration
	// IncreaseTimer is the rate-increase timer period (300 µs).
	IncreaseTimer sim.Duration
	// ByteCounter triggers a rate-increase event every so many sent bytes.
	ByteCounter int64
	// FastRecoveryRounds is F, the stage count spent in fast recovery.
	FastRecoveryRounds int
	// RateAI and RateHAI are the additive and hyper increase steps (bits/s).
	RateAI  int64
	RateHAI int64
	// CNPInterval is the NP-side minimum gap between CNPs per flow (50 µs).
	CNPInterval sim.Duration
	// NICGateBytes pauses the pacer while the NIC's lossless queue holds
	// more than this backlog (models the HW send queue's backpressure
	// under PFC pause).
	NICGateBytes int

	// GoBackN enables RoCE-style loss recovery. Off by default: a healthy
	// PFC fabric never drops lossless packets, and the recovery machinery
	// (ACK traffic, timers) would perturb the paper's baseline runs. The
	// fault-injection harness turns it on.
	GoBackN bool
	// AckInterval is how many in-order payload bytes the receiver lets
	// accumulate before emitting a cumulative ACK (a FIN always ACKs).
	AckInterval int64
	// NACKInterval rate-limits out-of-sequence NACKs per flow, so a burst
	// of in-flight packets behind one loss triggers one rewind, not many.
	NACKInterval sim.Duration
	// RetxTimeout is the base retransmission timeout armed per
	// transmission; it recovers tail loss (including lost FIN or ACK).
	RetxTimeout sim.Duration
	// MaxRetxBackoff caps the exponential timeout backoff multiplier.
	MaxRetxBackoff int
}

// DefaultConfig returns DCQCN parameters for a given NIC line rate.
func DefaultConfig(lineRate int64) Config {
	return Config{
		MSS:                pkt.MTUPayload,
		LineRate:           lineRate,
		MinRate:            40e6,
		G:                  1.0 / 256,
		AlphaTimer:         55 * sim.Microsecond,
		IncreaseTimer:      300 * sim.Microsecond,
		ByteCounter:        10 << 20,
		FastRecoveryRounds: 5,
		RateAI:             40e6,
		RateHAI:            200e6,
		CNPInterval:        50 * sim.Microsecond,
		NICGateBytes:       64 << 10,
		GoBackN:            false,
		AckInterval:        32 << 10,
		NACKInterval:       10 * sim.Microsecond,
		RetxTimeout:        500 * sim.Microsecond,
		MaxRetxBackoff:     16,
	}
}

// Sender is the DCQCN reaction point driving one RDMA flow.
type Sender struct {
	env  transport.Env
	cfg  Config
	flow *transport.Flow
	pool *pkt.Pool // cached env.Pool(); nil = heap allocation

	// Pre-bound timer bodies: method values allocate a closure at every
	// reference, and the pacer reschedules once per packet. Binding them
	// once here makes the whole paced send loop allocation-free.
	sendNextFn sim.Callback
	alphaFn    sim.Callback
	incFn      sim.Callback
	retxFn     sim.Callback

	rc    float64 // current rate, bits/s
	rt    float64 // target rate, bits/s
	alpha float64

	sent       int64 // payload bytes emitted
	byteCount  int64 // bytes since the last byte-counter event
	timerStage int   // increase-timer events since last cut
	byteStage  int   // byte-counter events since last cut
	cutSeen    bool  // a CNP has ever arrived

	alphaTimer sim.EventRef
	incTimer   sim.EventRef
	pacer      sim.EventRef

	// Go-back-N state, active only when cfg.GoBackN.
	sndUna        int64 // cumulative bytes acknowledged by the receiver
	rewindBarrier int64 // NACKs asking below this are stale; ignore them
	retxTimer     sim.EventRef
	retxBackoff   int

	done   bool
	onDone func()

	// CNPsReceived counts rate cuts taken.
	CNPsReceived uint64
	// NACKsReceived counts go-back-N rewinds taken on receiver NACKs.
	NACKsReceived uint64
	// Timeouts counts retransmission-timeout rewinds.
	Timeouts uint64
	// RetransmittedBytes totals payload bytes scheduled for re-emission by
	// rewinds (the recovery cost the fault experiments report).
	RetransmittedBytes int64
}

// NewSender builds a reaction point for flow. onDone, if non-nil, fires when
// the last payload byte has been handed to the NIC.
func NewSender(env transport.Env, cfg Config, flow *transport.Flow, onDone func()) *Sender {
	if err := flow.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.MSS <= 0 || cfg.LineRate <= 0 || cfg.G <= 0 || cfg.G > 1 {
		panic("dcqcn: invalid config")
	}
	if cfg.GoBackN && (cfg.AckInterval <= 0 || cfg.RetxTimeout <= 0 || cfg.MaxRetxBackoff < 1) {
		panic("dcqcn: GoBackN requires positive AckInterval, RetxTimeout and MaxRetxBackoff")
	}
	s := &Sender{
		env:         env,
		cfg:         cfg,
		flow:        flow,
		pool:        env.Pool(),
		rc:          float64(cfg.LineRate),
		rt:          float64(cfg.LineRate),
		alpha:       1,
		retxBackoff: 1,
		onDone:      onDone,
	}
	s.sendNextFn = s.sendNext
	s.alphaFn = s.onAlphaTimer
	s.incFn = s.onIncreaseTimer
	s.retxFn = s.onRetxTimeout
	return s
}

// Flow returns the flow descriptor.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Rate returns the current sending rate in bits/s (for tests).
func (s *Sender) Rate() float64 { return s.rc }

// Alpha returns the current congestion estimate (for tests).
func (s *Sender) Alpha() float64 { return s.alpha }

// Done reports sender-side completion.
func (s *Sender) Done() bool { return s.done }

// Start begins paced transmission at line rate.
func (s *Sender) Start() {
	s.sendNext()
}

// sendNext emits one packet and schedules the next according to the current
// rate, gating on NIC backlog so a PFC-paused port does not accumulate an
// unbounded software queue.
func (s *Sender) sendNext() {
	if s.done {
		return
	}
	if s.cfg.NICGateBytes > 0 && s.env.NICBacklog(s.flow.Priority) > s.cfg.NICGateBytes {
		s.pacer = s.env.Schedule(sim.TxTime(pkt.MTUBytes, s.cfg.LineRate), s.sendNextFn)
		return
	}

	payload := s.cfg.MSS
	if rem := s.flow.Size - s.sent; rem < int64(payload) {
		payload = int(rem)
	}
	p := s.pool.Data(s.flow.ID, s.flow.Src, s.flow.Dst, s.flow.Priority, s.flow.Class, s.sent, payload)
	p.FlowFin = s.sent+int64(payload) == s.flow.Size
	p.SentAt = s.env.Now()
	sentSize := p.Size // captured before Send: ownership moves to the NIC
	s.env.Send(p)
	s.sent += int64(payload)
	if s.cfg.GoBackN {
		// Each transmission restarts the tail-loss timer: it only fires
		// RetxTimeout after the *last* emission without full acknowledgement.
		s.armRetx()
	}

	s.byteCount += int64(sentSize)
	if s.byteCount >= s.cfg.ByteCounter {
		s.byteCount = 0
		s.byteStage++
		s.increase()
	}

	if s.sent >= s.flow.Size {
		if s.cfg.GoBackN {
			// All bytes emitted, not yet all acknowledged: stay alive and
			// let the ACK path (or the retx timer) decide what happens.
			return
		}
		s.finish()
		return
	}
	gap := sim.TxTime(sentSize, int64(s.rc))
	s.pacer = s.env.Schedule(gap, s.sendNextFn)
}

// HandleAck advances the cumulative acknowledgement mark. Fresh progress
// resets the timeout backoff; acknowledging the last byte completes the
// sender.
func (s *Sender) HandleAck(cum int64) {
	if s.done || !s.cfg.GoBackN || cum <= s.sndUna {
		return
	}
	s.sndUna = cum
	s.retxBackoff = 1
	if s.sndUna >= s.flow.Size {
		s.finish()
		return
	}
	s.armRetx()
}

// HandleNACK rewinds transmission to the receiver's expected byte. The
// rewind barrier makes the rewind monotone: stale NACKs for bytes an earlier
// rewind already covers (still in flight when the receiver recovered) are
// ignored, so a NACK storm cannot livelock retransmission.
func (s *Sender) HandleNACK(expected int64) {
	if s.done || !s.cfg.GoBackN {
		return
	}
	if expected < s.rewindBarrier {
		return
	}
	s.rewindBarrier = expected + 1
	if expected > s.sndUna {
		s.sndUna = expected
	}
	s.NACKsReceived++
	s.retxBackoff = 1
	s.rewind(expected)
}

// armRetx (re)arms the retransmission timeout while unacknowledged bytes
// are outstanding.
func (s *Sender) armRetx() {
	s.retxTimer.Cancel()
	if s.done || s.sndUna >= s.sent {
		return
	}
	s.retxTimer = s.env.Schedule(s.cfg.RetxTimeout*sim.Duration(s.retxBackoff), s.retxFn)
}

func (s *Sender) onRetxTimeout() {
	if s.done || s.sndUna >= s.sent {
		return
	}
	s.Timeouts++
	if s.retxBackoff < s.cfg.MaxRetxBackoff {
		s.retxBackoff *= 2
	}
	s.rewind(s.sndUna)
}

// rewind restarts transmission from byte `to`, charging the re-covered span
// to RetransmittedBytes and re-entering the paced send loop immediately.
func (s *Sender) rewind(to int64) {
	if to < 0 || to >= s.sent {
		s.armRetx()
		return
	}
	s.RetransmittedBytes += s.sent - to
	s.sent = to
	s.byteCount = 0
	s.pacer.Cancel()
	s.sendNext()
}

// HandleCNP is the reaction-point cut: α jumps toward 1, the target rate
// remembers the pre-cut rate, and the current rate drops by α/2.
func (s *Sender) HandleCNP() {
	if s.done {
		return
	}
	s.CNPsReceived++
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.rt = s.rc
	s.rc *= 1 - s.alpha/2
	s.clampRates()

	// Reset the recovery machinery.
	s.timerStage, s.byteStage = 0, 0
	s.byteCount = 0
	s.cutSeen = true
	s.restartTimers()
}

// restartTimers (re)arms the α-decay and rate-increase timers.
func (s *Sender) restartTimers() {
	s.alphaTimer.Cancel()
	s.incTimer.Cancel()
	s.alphaTimer = s.env.Schedule(s.cfg.AlphaTimer, s.alphaFn)
	s.incTimer = s.env.Schedule(s.cfg.IncreaseTimer, s.incFn)
}

func (s *Sender) onAlphaTimer() {
	if s.done {
		return
	}
	s.alpha *= 1 - s.cfg.G
	s.alphaTimer = s.env.Schedule(s.cfg.AlphaTimer, s.alphaFn)
}

func (s *Sender) onIncreaseTimer() {
	if s.done {
		return
	}
	s.timerStage++
	s.increase()
	s.incTimer = s.env.Schedule(s.cfg.IncreaseTimer, s.incFn)
}

// increase applies one rate-increase event: fast recovery halves the gap to
// the target; once either stage counter passes F the target itself grows
// (additively, or hyper when both counters are past F).
func (s *Sender) increase() {
	if !s.cutSeen {
		// Never cut: already at line rate.
		return
	}
	f := s.cfg.FastRecoveryRounds
	maxStage := s.timerStage
	if s.byteStage > maxStage {
		maxStage = s.byteStage
	}
	minStage := s.timerStage
	if s.byteStage < minStage {
		minStage = s.byteStage
	}
	switch {
	case maxStage <= f: // fast recovery
	case minStage > f: // hyper increase
		s.rt += float64(s.cfg.RateHAI)
	default: // additive increase
		s.rt += float64(s.cfg.RateAI)
	}
	s.rc = (s.rt + s.rc) / 2
	s.clampRates()
}

func (s *Sender) clampRates() {
	if s.rc < float64(s.cfg.MinRate) {
		s.rc = float64(s.cfg.MinRate)
	}
	if s.rc > float64(s.cfg.LineRate) {
		s.rc = float64(s.cfg.LineRate)
	}
	if s.rt > float64(s.cfg.LineRate) {
		s.rt = float64(s.cfg.LineRate)
	}
	if s.rt < s.rc {
		s.rt = s.rc
	}
}

func (s *Sender) finish() {
	s.done = true
	s.alphaTimer.Cancel()
	s.incTimer.Cancel()
	s.pacer.Cancel()
	s.retxTimer.Cancel()
	if s.onDone != nil {
		s.onDone()
	}
}

// Receiver is the DCQCN notification point for one flow: it reflects CE
// marks as rate-limited CNPs and detects flow completion.
type Receiver struct {
	env    transport.Env
	pool   *pkt.Pool // cached env.Pool(); nil = heap allocation
	flowID pkt.FlowID
	host   int
	peer   int
	cfg    Config

	recvNxt  int64
	gaps     uint64
	lastCNP  sim.Time
	sentCNP  bool
	complete bool
	onDone   func(at sim.Time)

	// Go-back-N state, active only when cfg.GoBackN.
	lastNACK   sim.Time
	sentNACK   bool
	lastAcked  int64
	lastDupAck sim.Time
	sentDupAck bool

	// NACKsSent counts out-of-sequence NACKs emitted (rate-limited).
	NACKsSent uint64
	// AcksSent counts cumulative ACKs emitted.
	AcksSent uint64
}

// NewReceiver builds a notification point; onDone fires when the flow's
// last byte arrives.
func NewReceiver(env transport.Env, cfg Config, flowID pkt.FlowID, host, peer int, onDone func(at sim.Time)) *Receiver {
	return &Receiver{
		env:    env,
		pool:   env.Pool(),
		cfg:    cfg,
		flowID: flowID,
		host:   host,
		peer:   peer,
		onDone: onDone,
	}
}

// Complete reports whether the last byte arrived.
func (r *Receiver) Complete() bool { return r.complete }

// Gaps counts sequence discontinuities observed — nonzero only if the
// lossless guarantee was violated upstream.
func (r *Receiver) Gaps() uint64 { return r.gaps }

// HandleData processes one arriving RDMA packet.
func (r *Receiver) HandleData(p *pkt.Packet) {
	if p.CE {
		now := r.env.Now()
		if !r.sentCNP || now-r.lastCNP >= r.cfg.CNPInterval {
			r.sentCNP = true
			r.lastCNP = now
			r.env.Send(r.pool.CNP(r.flowID, r.host, r.peer))
		}
	}

	if r.cfg.GoBackN {
		r.handleDataGBN(p)
		return
	}

	if p.Seq != r.recvNxt {
		r.gaps++
	}
	if p.End() > r.recvNxt {
		r.recvNxt = p.End()
	}

	if p.FlowFin && !r.complete && r.gaps == 0 {
		r.complete = true
		if r.onDone != nil {
			r.onDone(r.env.Now())
		}
	}
}

// Received returns the highest in-order byte offset delivered so far. Under
// go-back-N delivery is strictly contiguous; in clean (loss-free) runs the
// lossless class never reorders, so the value is contiguous there too.
func (r *Receiver) Received() int64 { return r.recvNxt }

// handleDataGBN is the strictly in-order receive path: out-of-sequence
// packets are discarded and NACKed (rate-limited), in-order progress is
// acknowledged cumulatively every AckInterval bytes and on FIN, and the flow
// completes when the FIN arrives in order — gaps count recovered loss
// events, not permanent damage.
func (r *Receiver) handleDataGBN(p *pkt.Packet) {
	if p.Seq > r.recvNxt {
		// A loss upstream left a hole: ask the sender to rewind.
		r.gaps++
		now := r.env.Now()
		if !r.sentNACK || now-r.lastNACK >= r.cfg.NACKInterval {
			r.sentNACK = true
			r.lastNACK = now
			r.NACKsSent++
			r.env.Send(r.pool.Nack(r.flowID, r.host, r.peer, r.recvNxt))
		}
		return
	}
	if p.End() <= r.recvNxt {
		// Duplicate from a rewind that overshot or a lost ACK: re-ACK
		// (rate-limited) so the sender can resynchronize — without this a
		// lost final ACK would leave the sender retransmitting forever.
		now := r.env.Now()
		if !r.sentDupAck || now-r.lastDupAck >= r.cfg.NACKInterval {
			r.sentDupAck = true
			r.lastDupAck = now
			r.AcksSent++
			r.env.Send(r.pool.Ack(r.flowID, r.host, r.peer, r.recvNxt, false))
		}
		return
	}
	r.recvNxt = p.End()

	if p.FlowFin || r.recvNxt-r.lastAcked >= r.cfg.AckInterval {
		r.lastAcked = r.recvNxt
		r.AcksSent++
		r.env.Send(r.pool.Ack(r.flowID, r.host, r.peer, r.recvNxt, false))
	}

	if p.FlowFin && !r.complete {
		r.complete = true
		if r.onDone != nil {
			r.onDone(r.env.Now())
		}
	}
}
