// Package dcqcn implements the DCQCN congestion control (Zhu et al.,
// SIGCOMM 2015) used for the paper's lossless RDMA traffic: a rate-based
// reaction point (sender) that cuts its rate on Congestion Notification
// Packets and recovers through fast-recovery, additive-increase and
// hyper-increase stages, and a notification point (receiver) that emits at
// most one CNP per flow per interval when it sees CE-marked packets.
//
// Reliability: the network is lossless under PFC, so the endpoints track
// sequence continuity only to assert the zero-loss invariant; there is no
// go-back-N (headroom exhaustion is surfaced as a lossless violation by the
// switch and as an incomplete flow here).
package dcqcn

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// Config parameterizes DCQCN endpoints. Defaults follow the DCQCN paper and
// common ns-3 implementations.
type Config struct {
	// MSS is the payload bytes per packet.
	MSS int
	// LineRate is the NIC line rate (bits/s), the initial and maximum rate.
	LineRate int64
	// MinRate floors the current rate (bits/s).
	MinRate int64
	// G is the EWMA gain for α.
	G float64
	// AlphaTimer is the α-decay period when no CNP arrives (55 µs).
	AlphaTimer sim.Duration
	// IncreaseTimer is the rate-increase timer period (300 µs).
	IncreaseTimer sim.Duration
	// ByteCounter triggers a rate-increase event every so many sent bytes.
	ByteCounter int64
	// FastRecoveryRounds is F, the stage count spent in fast recovery.
	FastRecoveryRounds int
	// RateAI and RateHAI are the additive and hyper increase steps (bits/s).
	RateAI  int64
	RateHAI int64
	// CNPInterval is the NP-side minimum gap between CNPs per flow (50 µs).
	CNPInterval sim.Duration
	// NICGateBytes pauses the pacer while the NIC's lossless queue holds
	// more than this backlog (models the HW send queue's backpressure
	// under PFC pause).
	NICGateBytes int
}

// DefaultConfig returns DCQCN parameters for a given NIC line rate.
func DefaultConfig(lineRate int64) Config {
	return Config{
		MSS:                pkt.MTUPayload,
		LineRate:           lineRate,
		MinRate:            40e6,
		G:                  1.0 / 256,
		AlphaTimer:         55 * sim.Microsecond,
		IncreaseTimer:      300 * sim.Microsecond,
		ByteCounter:        10 << 20,
		FastRecoveryRounds: 5,
		RateAI:             40e6,
		RateHAI:            200e6,
		CNPInterval:        50 * sim.Microsecond,
		NICGateBytes:       64 << 10,
	}
}

// Sender is the DCQCN reaction point driving one RDMA flow.
type Sender struct {
	env  transport.Env
	cfg  Config
	flow *transport.Flow

	rc    float64 // current rate, bits/s
	rt    float64 // target rate, bits/s
	alpha float64

	sent       int64 // payload bytes emitted
	byteCount  int64 // bytes since the last byte-counter event
	timerStage int   // increase-timer events since last cut
	byteStage  int   // byte-counter events since last cut
	cutSeen    bool  // a CNP has ever arrived

	alphaTimer sim.EventRef
	incTimer   sim.EventRef
	pacer      sim.EventRef

	done   bool
	onDone func()

	// CNPsReceived counts rate cuts taken.
	CNPsReceived uint64
}

// NewSender builds a reaction point for flow. onDone, if non-nil, fires when
// the last payload byte has been handed to the NIC.
func NewSender(env transport.Env, cfg Config, flow *transport.Flow, onDone func()) *Sender {
	if err := flow.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.MSS <= 0 || cfg.LineRate <= 0 || cfg.G <= 0 || cfg.G > 1 {
		panic("dcqcn: invalid config")
	}
	return &Sender{
		env:    env,
		cfg:    cfg,
		flow:   flow,
		rc:     float64(cfg.LineRate),
		rt:     float64(cfg.LineRate),
		alpha:  1,
		onDone: onDone,
	}
}

// Flow returns the flow descriptor.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Rate returns the current sending rate in bits/s (for tests).
func (s *Sender) Rate() float64 { return s.rc }

// Alpha returns the current congestion estimate (for tests).
func (s *Sender) Alpha() float64 { return s.alpha }

// Done reports sender-side completion.
func (s *Sender) Done() bool { return s.done }

// Start begins paced transmission at line rate.
func (s *Sender) Start() {
	s.sendNext()
}

// sendNext emits one packet and schedules the next according to the current
// rate, gating on NIC backlog so a PFC-paused port does not accumulate an
// unbounded software queue.
func (s *Sender) sendNext() {
	if s.done {
		return
	}
	if s.cfg.NICGateBytes > 0 && s.env.NICBacklog(s.flow.Priority) > s.cfg.NICGateBytes {
		s.pacer = s.env.Schedule(sim.TxTime(pkt.MTUBytes, s.cfg.LineRate), s.sendNext)
		return
	}

	payload := s.cfg.MSS
	if rem := s.flow.Size - s.sent; rem < int64(payload) {
		payload = int(rem)
	}
	p := pkt.NewData(s.flow.ID, s.flow.Src, s.flow.Dst, s.flow.Priority, s.flow.Class, s.sent, payload)
	p.FlowFin = s.sent+int64(payload) == s.flow.Size
	p.SentAt = s.env.Now()
	s.env.Send(p)
	s.sent += int64(payload)

	s.byteCount += int64(p.Size)
	if s.byteCount >= s.cfg.ByteCounter {
		s.byteCount = 0
		s.byteStage++
		s.increase()
	}

	if s.sent >= s.flow.Size {
		s.finish()
		return
	}
	gap := sim.TxTime(p.Size, int64(s.rc))
	s.pacer = s.env.Schedule(gap, s.sendNext)
}

// HandleCNP is the reaction-point cut: α jumps toward 1, the target rate
// remembers the pre-cut rate, and the current rate drops by α/2.
func (s *Sender) HandleCNP() {
	if s.done {
		return
	}
	s.CNPsReceived++
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.rt = s.rc
	s.rc *= 1 - s.alpha/2
	s.clampRates()

	// Reset the recovery machinery.
	s.timerStage, s.byteStage = 0, 0
	s.byteCount = 0
	s.cutSeen = true
	s.restartTimers()
}

// restartTimers (re)arms the α-decay and rate-increase timers.
func (s *Sender) restartTimers() {
	s.alphaTimer.Cancel()
	s.incTimer.Cancel()
	s.alphaTimer = s.env.Schedule(s.cfg.AlphaTimer, s.onAlphaTimer)
	s.incTimer = s.env.Schedule(s.cfg.IncreaseTimer, s.onIncreaseTimer)
}

func (s *Sender) onAlphaTimer() {
	if s.done {
		return
	}
	s.alpha *= 1 - s.cfg.G
	s.alphaTimer = s.env.Schedule(s.cfg.AlphaTimer, s.onAlphaTimer)
}

func (s *Sender) onIncreaseTimer() {
	if s.done {
		return
	}
	s.timerStage++
	s.increase()
	s.incTimer = s.env.Schedule(s.cfg.IncreaseTimer, s.onIncreaseTimer)
}

// increase applies one rate-increase event: fast recovery halves the gap to
// the target; once either stage counter passes F the target itself grows
// (additively, or hyper when both counters are past F).
func (s *Sender) increase() {
	if !s.cutSeen {
		// Never cut: already at line rate.
		return
	}
	f := s.cfg.FastRecoveryRounds
	maxStage := s.timerStage
	if s.byteStage > maxStage {
		maxStage = s.byteStage
	}
	minStage := s.timerStage
	if s.byteStage < minStage {
		minStage = s.byteStage
	}
	switch {
	case maxStage <= f: // fast recovery
	case minStage > f: // hyper increase
		s.rt += float64(s.cfg.RateHAI)
	default: // additive increase
		s.rt += float64(s.cfg.RateAI)
	}
	s.rc = (s.rt + s.rc) / 2
	s.clampRates()
}

func (s *Sender) clampRates() {
	if s.rc < float64(s.cfg.MinRate) {
		s.rc = float64(s.cfg.MinRate)
	}
	if s.rc > float64(s.cfg.LineRate) {
		s.rc = float64(s.cfg.LineRate)
	}
	if s.rt > float64(s.cfg.LineRate) {
		s.rt = float64(s.cfg.LineRate)
	}
	if s.rt < s.rc {
		s.rt = s.rc
	}
}

func (s *Sender) finish() {
	s.done = true
	s.alphaTimer.Cancel()
	s.incTimer.Cancel()
	s.pacer.Cancel()
	if s.onDone != nil {
		s.onDone()
	}
}

// Receiver is the DCQCN notification point for one flow: it reflects CE
// marks as rate-limited CNPs and detects flow completion.
type Receiver struct {
	env    transport.Env
	flowID pkt.FlowID
	host   int
	peer   int
	cfg    Config

	recvNxt  int64
	gaps     uint64
	lastCNP  sim.Time
	sentCNP  bool
	complete bool
	onDone   func(at sim.Time)
}

// NewReceiver builds a notification point; onDone fires when the flow's
// last byte arrives.
func NewReceiver(env transport.Env, cfg Config, flowID pkt.FlowID, host, peer int, onDone func(at sim.Time)) *Receiver {
	return &Receiver{
		env:    env,
		cfg:    cfg,
		flowID: flowID,
		host:   host,
		peer:   peer,
		onDone: onDone,
	}
}

// Complete reports whether the last byte arrived.
func (r *Receiver) Complete() bool { return r.complete }

// Gaps counts sequence discontinuities observed — nonzero only if the
// lossless guarantee was violated upstream.
func (r *Receiver) Gaps() uint64 { return r.gaps }

// HandleData processes one arriving RDMA packet.
func (r *Receiver) HandleData(p *pkt.Packet) {
	if p.Seq != r.recvNxt {
		r.gaps++
	}
	if p.End() > r.recvNxt {
		r.recvNxt = p.End()
	}

	if p.CE {
		now := r.env.Now()
		if !r.sentCNP || now-r.lastCNP >= r.cfg.CNPInterval {
			r.sentCNP = true
			r.lastCNP = now
			r.env.Send(pkt.NewCNP(r.flowID, r.host, r.peer))
		}
	}

	if p.FlowFin && !r.complete && r.gaps == 0 {
		r.complete = true
		if r.onDone != nil {
			r.onDone(r.env.Now())
		}
	}
}
