package dcqcn

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// gbnEnv wires a go-back-N Sender and Receiver back-to-back through a
// droppable constant-delay channel: the loss patterns fault injection
// produces, without a fabric in between.
type gbnEnv struct {
	eng   *sim.Engine
	delay sim.Duration
	s     *Sender
	r     *Receiver
	// drop, when non-nil, vets every packet before the channel carries it;
	// returning true discards the packet.
	drop func(p *pkt.Packet) bool
}

var _ transport.Env = (*gbnEnv)(nil)

func (e *gbnEnv) Now() sim.Time      { return e.eng.Now() }
func (e *gbnEnv) NICBacklog(int) int { return 0 }
func (e *gbnEnv) Pool() *pkt.Pool    { return nil }

func (e *gbnEnv) Schedule(d sim.Duration, fn func()) sim.EventRef {
	return e.eng.Schedule(d, fn)
}

func (e *gbnEnv) Send(p *pkt.Packet) {
	if e.drop != nil && e.drop(p) {
		return
	}
	e.eng.Schedule(e.delay, func() {
		switch p.Kind {
		case pkt.KindData:
			e.r.HandleData(p)
		case pkt.KindAck:
			e.s.HandleAck(p.Seq)
		case pkt.KindNack:
			e.s.HandleNACK(p.Seq)
		}
	})
}

// newGBNPair builds a connected sender/receiver for a size-byte flow and
// reports receiver completion through the returned flag.
func newGBNPair(eng *sim.Engine, size int64) (*gbnEnv, *Sender, *Receiver, *bool) {
	cfg := DefaultConfig(25e9)
	cfg.GoBackN = true
	env := &gbnEnv{eng: eng, delay: 2 * sim.Microsecond}
	flow := &transport.Flow{
		ID: 7, Src: 0, Dst: 1, Size: size,
		Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
	}
	s := NewSender(env, cfg, flow, nil)
	done := false
	r := NewReceiver(env, cfg, flow.ID, 1, 0, func(sim.Time) { done = true })
	env.s, env.r = s, r
	return env, s, r, &done
}

func TestGoBackNCleanFlowCompletesOnAck(t *testing.T) {
	eng := sim.NewEngine(1)
	_, s, r, done := newGBNPair(eng, 10*int64(pkt.MTUPayload))
	s.Start()
	eng.RunAll()

	if !*done || !r.Complete() {
		t.Fatal("receiver did not complete")
	}
	if !s.Done() {
		t.Fatal("sender did not complete on cumulative ACK")
	}
	if s.RetransmittedBytes != 0 || s.NACKsReceived != 0 || s.Timeouts != 0 {
		t.Errorf("clean run retransmitted: bytes=%d nacks=%d rtos=%d",
			s.RetransmittedBytes, s.NACKsReceived, s.Timeouts)
	}
	if r.Gaps() != 0 || r.NACKsSent != 0 {
		t.Errorf("clean run saw gaps=%d nacks=%d", r.Gaps(), r.NACKsSent)
	}
	if r.AcksSent == 0 {
		t.Error("no ACKs emitted")
	}
}

func TestGoBackNRecoversFromMidFlowLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	env, s, r, done := newGBNPair(eng, 10*int64(pkt.MTUPayload))
	lossSeq := 3 * int64(pkt.MTUPayload)
	dropped := 0
	env.drop = func(p *pkt.Packet) bool {
		if p.Kind == pkt.KindData && p.Seq == lossSeq && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	s.Start()
	eng.RunAll()

	if dropped != 1 {
		t.Fatalf("dropped %d packets, want 1", dropped)
	}
	if !*done || !s.Done() {
		t.Fatal("flow did not recover from mid-flow loss")
	}
	if s.NACKsReceived == 0 {
		t.Error("sender took no NACK rewind")
	}
	if s.RetransmittedBytes == 0 {
		t.Error("recovery cost not accounted")
	}
	if r.Gaps() == 0 {
		t.Error("receiver observed no gap")
	}
}

func TestGoBackNRecoversFromLostFIN(t *testing.T) {
	eng := sim.NewEngine(1)
	env, s, _, done := newGBNPair(eng, 5*int64(pkt.MTUPayload))
	dropped := 0
	env.drop = func(p *pkt.Packet) bool {
		if p.Kind == pkt.KindData && p.FlowFin && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	s.Start()
	eng.RunAll()

	if !*done || !s.Done() {
		t.Fatal("flow did not recover from a lost FIN")
	}
	if s.Timeouts == 0 {
		t.Error("tail loss must be recovered by the retransmission timeout")
	}
}

func TestGoBackNRecoversFromLostFinalAck(t *testing.T) {
	eng := sim.NewEngine(1)
	env, s, r, done := newGBNPair(eng, 5*int64(pkt.MTUPayload))
	size := 5 * int64(pkt.MTUPayload)
	dropped := 0
	env.drop = func(p *pkt.Packet) bool {
		if p.Kind == pkt.KindAck && p.Seq == size && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	s.Start()
	eng.RunAll()

	if dropped != 1 {
		t.Fatalf("dropped %d final ACKs, want 1", dropped)
	}
	if !*done || !r.Complete() {
		t.Fatal("receiver should have completed before the ACK was lost")
	}
	if !s.Done() {
		t.Fatal("sender wedged on a lost final ACK: duplicate re-ACK resync failed")
	}
	if s.Timeouts == 0 {
		t.Error("recovery should have gone through the retransmission timeout")
	}
}

func TestGoBackNStaleNACKsAreIgnored(t *testing.T) {
	eng := sim.NewEngine(1)
	env, s, _, _ := newGBNPair(eng, 100*int64(pkt.MTUPayload))
	env.drop = func(p *pkt.Packet) bool { return p.Kind == pkt.KindData }
	s.Start()
	eng.Run(100 * sim.Microsecond) // emit a prefix of the flow

	mss := int64(pkt.MTUPayload)
	s.HandleNACK(5 * mss)
	if s.NACKsReceived != 1 {
		t.Fatalf("first NACK not taken: count=%d", s.NACKsReceived)
	}
	// Stale: asks for bytes below the rewind barrier set by the first NACK.
	s.HandleNACK(3 * mss)
	s.HandleNACK(5 * mss)
	if s.NACKsReceived != 1 {
		t.Errorf("stale NACKs taken: count=%d, want 1 (livelock guard broken)", s.NACKsReceived)
	}
}

func TestGoBackNConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GoBackN with zero RetxTimeout must panic")
		}
	}()
	cfg := DefaultConfig(25e9)
	cfg.GoBackN = true
	cfg.RetxTimeout = 0
	NewSender(&gbnEnv{eng: sim.NewEngine(1)}, cfg, &transport.Flow{
		ID: 1, Src: 0, Dst: 1, Size: 1000,
		Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
	}, nil)
}
