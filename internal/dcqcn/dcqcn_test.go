package dcqcn

import (
	"math"
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

type fakeEnv struct {
	eng     *sim.Engine
	sent    []*pkt.Packet
	sentAt  []sim.Time
	backlog int
}

var _ transport.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Now() sim.Time      { return e.eng.Now() }
func (e *fakeEnv) NICBacklog(int) int { return e.backlog }
func (e *fakeEnv) Pool() *pkt.Pool    { return nil }

func (e *fakeEnv) Send(p *pkt.Packet) {
	e.sent = append(e.sent, p)
	e.sentAt = append(e.sentAt, e.eng.Now())
}

func (e *fakeEnv) Schedule(d sim.Duration, fn func()) sim.EventRef {
	return e.eng.Schedule(d, fn)
}

func rdmaFlow(size int64) *transport.Flow {
	return &transport.Flow{
		ID:       7,
		Src:      0,
		Dst:      1,
		Size:     size,
		Priority: pkt.PrioLossless,
		Class:    pkt.ClassLossless,
	}
}

func TestSenderPacesAtLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(10*int64(pkt.MTUPayload)), nil)
	s.Start()
	eng.RunAll()

	if len(env.sent) != 10 {
		t.Fatalf("sent %d packets, want 10", len(env.sent))
	}
	gap := sim.TxTime(pkt.MTUBytes, 25e9)
	for i := 1; i < 10; i++ {
		if got := env.sentAt[i] - env.sentAt[i-1]; got != gap {
			t.Errorf("gap %d = %v, want %v", i, got, gap)
		}
	}
	if !env.sent[9].FlowFin {
		t.Error("last packet missing FIN")
	}
	if !s.Done() {
		t.Error("sender not done")
	}
}

func TestSenderCNPCutsRateByHalfInitially(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(100<<20), nil)
	s.Start()

	// α starts at 1 and g is small, so the first CNP cuts by ≈ 1/2.
	s.HandleCNP()
	alpha := (1-cfg.G)*1 + cfg.G
	expected := 25e9 * (1 - alpha/2)
	if math.Abs(s.Rate()-expected) > 1 {
		t.Errorf("rate after first CNP = %v, want %v", s.Rate(), expected)
	}
	if s.CNPsReceived != 1 {
		t.Errorf("CNPsReceived = %d, want 1", s.CNPsReceived)
	}
}

func TestSenderRepeatedCNPsApproachMinRate(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(100<<20), nil)
	s.Start()
	for i := 0; i < 200; i++ {
		s.HandleCNP()
	}
	if s.Rate() != float64(cfg.MinRate) {
		t.Errorf("rate = %v after 200 CNPs, want clamp at MinRate %d", s.Rate(), cfg.MinRate)
	}
}

func TestSenderAlphaDecaysWithoutCNPs(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(100<<20), nil)
	s.Start()
	s.HandleCNP()
	a0 := s.Alpha()

	eng.Run(eng.Now() + 10*cfg.AlphaTimer + sim.Microsecond)
	if s.Alpha() >= a0 {
		t.Errorf("α did not decay: %v -> %v", a0, s.Alpha())
	}
}

func TestSenderFastRecoveryHalvesGapToTarget(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(100<<20), nil)
	s.Start()
	s.HandleCNP()
	rc0, rt0 := s.rc, s.rt

	// One increase-timer event: fast recovery, rc = (rt+rc)/2, rt fixed.
	eng.Run(eng.Now() + cfg.IncreaseTimer + sim.Microsecond)
	if math.Abs(s.rc-(rt0+rc0)/2) > 1 {
		t.Errorf("rc after FR = %v, want %v", s.rc, (rt0+rc0)/2)
	}
	if s.rt != rt0 {
		t.Errorf("rt changed during fast recovery: %v -> %v", rt0, s.rt)
	}
}

func TestSenderAdditiveIncreaseRaisesTarget(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	cfg.IncreaseTimer = 10 * sim.Microsecond // fast-forward stages
	s := NewSender(env, cfg, rdmaFlow(100<<20), nil)
	s.Start()
	// Two cuts leave the target rate well below line rate, so additive
	// increase has room to raise it.
	s.HandleCNP()
	s.HandleCNP()
	rt0 := s.rt

	// F+2 timer events: past fast recovery, target must have grown.
	eng.Run(eng.Now() + sim.Duration(cfg.FastRecoveryRounds+2)*cfg.IncreaseTimer + sim.Microsecond)
	if s.rt <= rt0 {
		t.Errorf("rt = %v after additive stages, want > %v", s.rt, rt0)
	}
}

func TestSenderRecoversTowardLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(1<<30), nil)
	s.Start()
	for i := 0; i < 10; i++ {
		s.HandleCNP()
	}
	low := s.Rate()
	// Long quiet period: hyper increase should drive the rate back up.
	eng.Run(eng.Now() + 100*sim.Millisecond)
	if s.Rate() <= low*2 {
		t.Errorf("rate = %v after recovery period, want well above %v", s.Rate(), low)
	}
	if s.Rate() > 25e9 {
		t.Errorf("rate = %v exceeds line rate", s.Rate())
	}
}

func TestSenderNICGateDefersPacing(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng, backlog: 1 << 20} // NIC jammed
	cfg := DefaultConfig(25e9)
	s := NewSender(env, cfg, rdmaFlow(10*int64(pkt.MTUPayload)), nil)
	s.Start()
	eng.Run(10 * sim.Microsecond)
	if len(env.sent) != 0 {
		t.Fatalf("sent %d packets despite jammed NIC, want 0", len(env.sent))
	}
	env.backlog = 0
	eng.RunAll()
	if len(env.sent) != 10 {
		t.Errorf("sent %d packets after gate cleared, want 10", len(env.sent))
	}
}

func TestReceiverCNPRateLimit(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig(25e9)
	r := NewReceiver(env, cfg, 7, 1, 0, nil)

	ce := func(seq int64) *pkt.Packet {
		p := pkt.NewData(7, 0, 1, pkt.PrioLossless, pkt.ClassLossless, seq, 1000)
		p.CE = true
		return p
	}
	r.HandleData(ce(0))
	r.HandleData(ce(1000)) // within 50 µs: suppressed
	if len(env.sent) != 1 {
		t.Fatalf("CNPs = %d, want 1 (rate limited)", len(env.sent))
	}
	eng.Run(cfg.CNPInterval + sim.Microsecond)
	r.HandleData(ce(2000))
	if len(env.sent) != 2 {
		t.Errorf("CNPs = %d after interval, want 2", len(env.sent))
	}
	if env.sent[0].Kind != pkt.KindCNP {
		t.Error("emitted packet is not a CNP")
	}
}

func TestReceiverUnmarkedDataNoCNP(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	r := NewReceiver(env, DefaultConfig(25e9), 7, 1, 0, nil)
	p := pkt.NewData(7, 0, 1, pkt.PrioLossless, pkt.ClassLossless, 0, 1000)
	r.HandleData(p)
	if len(env.sent) != 0 {
		t.Error("CNP emitted for unmarked data")
	}
}

func TestReceiverCompletionAndGapDetection(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	var done sim.Time = -1
	r := NewReceiver(env, DefaultConfig(25e9), 7, 1, 0, func(at sim.Time) { done = at })

	seg := func(seq int64, fin bool) *pkt.Packet {
		p := pkt.NewData(7, 0, 1, pkt.PrioLossless, pkt.ClassLossless, seq, 1000)
		p.FlowFin = fin
		return p
	}
	r.HandleData(seg(0, false))
	r.HandleData(seg(1000, true))
	if !r.Complete() || done < 0 {
		t.Error("in-order flow did not complete")
	}
	if r.Gaps() != 0 {
		t.Errorf("gaps = %d on clean flow, want 0", r.Gaps())
	}

	// A second receiver sees a hole: no completion, gap counted.
	r2 := NewReceiver(env, DefaultConfig(25e9), 8, 1, 0, nil)
	r2.HandleData(seg(0, false))
	r2.HandleData(seg(2000, true)) // 1000..2000 missing
	if r2.Complete() {
		t.Error("flow with a gap must not complete")
	}
	if r2.Gaps() != 1 {
		t.Errorf("gaps = %d, want 1", r2.Gaps())
	}
}

func TestSenderValidation(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	t.Run("bad flow", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		NewSender(env, DefaultConfig(25e9), rdmaFlow(0), nil)
	})
	t.Run("bad config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		cfg := DefaultConfig(25e9)
		cfg.LineRate = 0
		NewSender(env, cfg, rdmaFlow(1000), nil)
	})
}

func TestSenderShortFlowSinglePacket(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	done := false
	s := NewSender(env, DefaultConfig(25e9), rdmaFlow(300), func() { done = true })
	s.Start()
	eng.RunAll()
	if len(env.sent) != 1 || env.sent[0].PayloadLen != 300 || !env.sent[0].FlowFin {
		t.Errorf("short flow emitted %d packets", len(env.sent))
	}
	if !done {
		t.Error("onDone not fired")
	}
}
