module l2bm

go 1.22
